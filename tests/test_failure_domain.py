"""Failure domains: health-aware placement, crash tolerance, drain.

Unit coverage for the pieces docs/PROTOCOL.md "Failure domains" composes —
:class:`ThreadPlacer` health filtering, the latched
:class:`ClusterHealthView` over the transient :class:`HealthTracker`,
``FaultPlan.crash``/``drain`` schedules, directory re-homing via
``evict_node``, ``RpcChannel.abort_peer`` — plus end-to-end cluster runs:
a mid-run crash aborts the seed configuration, completes degraded with the
failure domain armed, and a cooperative drain completes with nothing lost.
"""

import functools

import pytest

from repro import Cluster, DQEMUConfig, FaultPlan, ServiceTimeout
from repro.cli.run import build_parser
from repro.core.scheduler import ThreadPlacer
from repro.errors import ConfigError
from repro.mem.directory import Directory
from repro.net import Endpoint, Fabric
from repro.net.faults import FaultInjector, drop
from repro.net.health import ClusterHealthView, HealthTracker, PeerState
from repro.net.messages import PageRequest
from repro.net.rpc import RetryPolicy, RpcTimeout
from repro.sim import Simulator
from repro.workloads import blackscholes, memaccess

RETRY = RetryPolicy(max_retries=3, backoff_base_ns=10_000)


def make_view(suspect_after=2, down_after=5):
    sim = Simulator()
    tracker = HealthTracker(sim, suspect_after=suspect_after, down_after=down_after)
    return ClusterHealthView(tracker=tracker), tracker


# -- health-aware placement (§5.3 + failure domains) ---------------------------


class TestHealthAwarePlacer:
    def test_round_robin_ignores_health_when_unarmed(self):
        p = ThreadPlacer("round_robin", [1, 2, 3])
        assert [p.place() for _ in range(6)] == [1, 2, 3, 1, 2, 3]
        assert p.skip_counts() == {}

    def test_failed_and_draining_candidates_are_skipped(self):
        view, _ = make_view()
        p = ThreadPlacer("round_robin", [1, 2, 3], health=view, fallback=0)
        view.mark_failed(2)
        view.mark_draining(3)
        assert [p.place() for _ in range(3)] == [1, 1, 1]
        skips = p.skip_counts()
        assert skips["n2:down"] == 3 and skips["n3:draining"] == 3

    def test_tracker_down_is_skipped_without_latching(self):
        view, tracker = make_view(suspect_after=1, down_after=2)
        p = ThreadPlacer("round_robin", [1, 2], health=view, fallback=0)
        tracker.retransmitted(2)
        tracker.retransmitted(2)
        assert tracker.state_of(2) is PeerState.DOWN
        assert p.place() == 1
        # An answered call heals the tracker and the pool widens again —
        # the round-robin cursor keeps walking as if nothing happened.
        tracker.heard_from(2)
        assert p.place() == 2

    def test_suspect_deprioritized_until_no_healthy_left(self):
        view, tracker = make_view(suspect_after=1, down_after=3)
        p = ThreadPlacer("round_robin", [1, 2], health=view, fallback=0)
        tracker.retransmitted(2)
        assert tracker.state_of(2) is PeerState.SUSPECT
        assert p.place() == 1
        assert p.skip_counts() == {"n2:suspect": 1}
        # The only healthy peer goes down: the suspect is pressed back
        # into service rather than refusing to place at all.
        for _ in range(3):
            tracker.retransmitted(1)
        assert tracker.state_of(1) is PeerState.DOWN
        assert p.place() == 2

    def test_fallback_absorbs_when_nothing_usable(self):
        view, _ = make_view()
        p = ThreadPlacer("round_robin", [1, 2], health=view, fallback=0)
        view.mark_failed(1)
        view.mark_failed(2)
        assert p.place() == 0
        assert p.skip_counts()["n0:fallback"] == 1
        # Off-candidate placements are counted, not KeyError'd.
        assert p.distribution() == {1: 0, 2: 0, 0: 1}

    def test_no_fallback_raises(self):
        view, _ = make_view()
        p = ThreadPlacer("round_robin", [1], health=view)
        view.mark_failed(1)
        with pytest.raises(ConfigError):
            p.place()

    def test_hint_policy_respects_health_filter(self):
        view, _ = make_view()
        p = ThreadPlacer("hint", [1, 2, 3], health=view, fallback=0)
        view.mark_failed(2)
        # Group hashing walks the filtered pool [1, 3].
        assert p.place(hint_group=0) == 1
        assert p.place(hint_group=1) == 3

    def test_hinted_group_rehomes_deterministically_when_home_down(self):
        # Group 1's home with a healthy pool [1, 2, 3] is node 2.  With the
        # home failed, every placement of the group lands on the *same*
        # replacement node — locality degrades, determinism doesn't.
        view, _ = make_view()
        p = ThreadPlacer("hint", [1, 2, 3], health=view, fallback=0)
        assert p.place(hint_group=1) == 2  # healthy home
        view.mark_failed(2)
        rehomed = [p.place(hint_group=1) for _ in range(4)]
        assert rehomed == [3, 3, 3, 3]  # pool [1, 3], group 1 -> index 1
        assert p.skip_counts()["n2:down"] == 4
        # A sibling group keeps its own (deterministic) re-homed node too.
        assert p.place(hint_group=0) == 1

    def test_hinted_group_rehomes_when_home_draining(self):
        view, _ = make_view()
        p = ThreadPlacer("hint", [1, 2], health=view, fallback=0)
        assert p.place(hint_group=0) == 1
        view.mark_draining(1)
        assert [p.place(hint_group=0) for _ in range(3)] == [2, 2, 2]
        assert p.skip_counts() == {"n1:draining": 3}

    def test_hinted_group_falls_back_when_every_candidate_unusable(self):
        view, _ = make_view()
        p = ThreadPlacer("hint", [1, 2], health=view, fallback=0)
        view.mark_failed(1)
        view.mark_draining(2)
        assert p.place(hint_group=5) == 0
        skips = p.skip_counts()
        assert skips["n1:down"] == 1
        assert skips["n2:draining"] == 1
        assert skips["n0:fallback"] == 1
        assert p.placements == [(5, 0)]

    def test_hinted_group_returns_home_after_tracker_heals(self):
        # Tracker-driven DOWN (unlike a latched failure) heals; the group
        # resumes its original home once the peer answers again.
        view, tracker = make_view(suspect_after=1, down_after=2)
        p = ThreadPlacer("hint", [1, 2], health=view, fallback=0)
        tracker.retransmitted(2)
        tracker.retransmitted(2)
        assert p.place(hint_group=1) == 1  # re-homed while node 2 is down
        tracker.heard_from(2)
        assert p.place(hint_group=1) == 2  # home again

    def test_unhinted_threads_round_robin_over_filtered_pool(self):
        view, _ = make_view()
        p = ThreadPlacer("hint", [1, 2, 3], health=view, fallback=0)
        view.mark_draining(2)
        assert [p.place() for _ in range(4)] == [1, 3, 1, 3]

    def test_rr_offset_staggers_tenant_cursors(self):
        # Concurrent jobs get placers with staggered cursors so their first
        # workers interleave across the fleet instead of stacking on node 1.
        p0 = ThreadPlacer("round_robin", [1, 2, 3], rr_offset=0)
        p1 = ThreadPlacer("round_robin", [1, 2, 3], rr_offset=1)
        assert [p0.place() for _ in range(3)] == [1, 2, 3]
        assert [p1.place() for _ in range(3)] == [2, 3, 1]


# -- latched cluster view over the transient tracker ---------------------------


class TestClusterHealthView:
    def test_failure_latches_over_tracker_healing(self):
        view, tracker = make_view(suspect_after=1, down_after=2)
        tracker.retransmitted(3)
        tracker.retransmitted(3)
        view.mark_failed(3)
        tracker.heard_from(3)  # a stale reply trickles in post-mortem
        assert tracker.state_of(3) is PeerState.UP
        assert view.is_failed(3)
        assert view.unusable_reason(3) == "down"
        assert view.state_of(3) is PeerState.DOWN

    def test_draining_and_failed_interplay(self):
        view, _ = make_view()
        view.mark_failed(1)
        view.mark_draining(1)  # no-op: the node is already gone
        assert not view.is_draining(1)
        view.mark_draining(2)
        assert view.unusable_reason(2) == "draining"
        view.mark_failed(2)  # a crash mid-drain upgrades the verdict
        assert view.unusable_reason(2) == "down"
        assert not view.is_draining(2)


class TestHealthTrackerHealing:
    def test_down_heals_on_answered_call(self):
        sim = Simulator()
        t = HealthTracker(sim, suspect_after=2, down_after=3)
        fired = []
        t.on_down.append(fired.append)
        for _ in range(3):
            t.retransmitted(4)
        assert t.state_of(4) is PeerState.DOWN
        assert fired == [4]
        t.retransmitted(4)  # repeat confirmation: no refire
        assert fired == [4]
        assert "n4=down" in t.describe()
        # One answered call heals the peer completely (partition semantics).
        t.heard_from(4)
        assert t.state_of(4) is PeerState.UP
        assert t.states() == {4: PeerState.UP}
        assert t.peer(4).consecutive_failures == 0
        # A relapse demotes the peer again, but on_down stays exactly-once
        # per peer: the failure domain's recovery must never re-run for a
        # node it already wrote off, no matter how evidence races or heals.
        for _ in range(3):
            t.retransmitted(4)
        assert t.state_of(4) is PeerState.DOWN
        assert fired == [4]


# -- fault-plan schedules ------------------------------------------------------


class TestFaultPlanSchedules:
    def test_crash_schedule_and_wire_rules(self):
        plan = FaultPlan.crash(2, 5_000)
        assert plan.crashes == ((2, 5_000),)
        assert [r.label for r in plan.rules] == ["crash:n2:out", "crash:n2:in"]
        assert all(r.until_ns is None for r in plan.rules)  # never heals
        assert "crash:n2@5000ns" in plan.describe()

    def test_drain_keeps_the_wire_clean(self):
        plan = FaultPlan.drain(1, 2_000)
        assert plan.drains == ((1, 2_000),)
        assert plan.rules == ()
        assert "drain:n1@2000ns" in plan.describe()

    def test_master_cannot_crash_or_drain(self):
        with pytest.raises(ConfigError):
            FaultPlan.crash(0, 1_000)
        with pytest.raises(ConfigError):
            FaultPlan.drain(0, 1_000)
        with pytest.raises(ConfigError):
            FaultPlan.crash(1, -1)

    def test_schedule_entries_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=((1, "soon"),))
        with pytest.raises(ConfigError):
            FaultPlan(drains=((-1, 5),))


class TestConfigValidation:
    def test_health_thresholds(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(health_suspect_after=0)
        with pytest.raises(ConfigError):
            DQEMUConfig(health_suspect_after=3, health_down_after=3)
        cfg = DQEMUConfig(health_suspect_after=3, health_down_after=9)
        assert (cfg.health_suspect_after, cfg.health_down_after) == (3, 9)

    def test_evacuation_requires_timeouts(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(evacuation_enabled=True)
        DQEMUConfig(evacuation_enabled=True, rpc_timeout_ns=10_000)

    def test_cli_flags_parse(self):
        args = build_parser().parse_args(
            ["prog.s", "--health-suspect-after", "3", "--health-down-after", "9"]
        )
        assert args.health_suspect_after == 3
        assert args.health_down_after == 9

    def test_checkpoint_requires_evacuation(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(checkpoint_interval_ns=10_000, rpc_timeout_ns=10_000)
        cfg = DQEMUConfig(
            checkpoint_interval_ns=10_000, evacuation_enabled=True,
            rpc_timeout_ns=10_000,
        )
        assert cfg.checkpoint_interval_ns == 10_000

    def test_checkpoint_interval_and_target_validated(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(
                checkpoint_interval_ns=0, evacuation_enabled=True,
                rpc_timeout_ns=10_000,
            )
        with pytest.raises(ConfigError):
            DQEMUConfig(checkpoint_target="nowhere")
        with pytest.raises(ConfigError):
            DQEMUConfig(checkpoint_service_ns=-1)

    def test_rebalance_requires_evacuation(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(rebalance_threshold_ns=5_000, rpc_timeout_ns=10_000)
        with pytest.raises(ConfigError):
            DQEMUConfig(
                rebalance_threshold_ns=0, evacuation_enabled=True,
                rpc_timeout_ns=10_000,
            )
        DQEMUConfig(
            rebalance_threshold_ns=5_000, evacuation_enabled=True,
            rpc_timeout_ns=10_000,
        )

    def test_checkpoint_cli_flags_parse(self):
        args = build_parser().parse_args(
            [
                "prog.s", "--rpc-timeout-ns", "20000", "--evacuation",
                "--checkpoint-interval-ns", "50000",
                "--checkpoint-target", "peer",
                "--rebalance-threshold-ns", "8000",
            ]
        )
        assert args.rpc_timeout_ns == 20_000
        assert args.evacuation
        assert args.checkpoint_interval_ns == 50_000
        assert args.checkpoint_target == "peer"
        assert args.rebalance_threshold_ns == 8_000


# -- directory re-homing -------------------------------------------------------


class TestDirectoryRehoming:
    def test_evict_exclusive_grantee_counts_page_lost(self):
        # An Exclusive-clean grantee is recorded as an owner: it may have
        # silently upgraded to Modified without telling the master, so
        # eviction must write the page off conservatively, exactly like a
        # Modified owner.
        d = Directory()
        d.commit(3, page=1, write=False, exclusive=True)
        d.commit(3, page=2, write=False)  # plain Shared copy on the victim
        rehomed, lost = d.evict_node(3)
        assert lost == [1]
        assert rehomed == [2]
        assert d.peek(1).is_idle()

    def test_evict_node_promotes_shared_and_counts_modified(self):
        d = Directory()
        d.commit(3, page=1, write=True)  # n3 owns page 1 (Modified)
        d.commit(3, page=2, write=False)  # n3 shares page 2 with n1
        d.commit(1, page=2, write=False)
        d.commit(1, page=3, write=True)  # untouched bystander
        rehomed, lost = d.evict_node(3)
        assert rehomed == [2] and lost == [1]
        # The Modified page's stale home copy is promoted (owner cleared);
        # the Shared page simply loses one sharer.
        assert d.owner(1) is None
        assert d.sharers(2) == frozenset({1})
        assert d.owner(3) == 1
        # Eviction is idempotent once the node holds nothing.
        assert d.evict_node(3) == ([], [])


# -- abort_peer: detection cuts cascading timeouts -----------------------------


class TestAbortPeer:
    def _mini(self, plan=None):
        sim = Simulator()
        fabric = Fabric(sim, one_way_latency_ns=100, loopback_latency_ns=10)
        if plan is not None:
            FaultInjector(sim, plan).attach(fabric)
        return sim, [Endpoint(sim, fabric, i) for i in range(2)]

    def test_abort_peer_fails_pending_calls_without_waiting_out_budget(self):
        # A handler mid-call against a corpse must fail the moment the
        # detector declares the peer dead, not after its own retry budget —
        # otherwise the handler's *clients* (whose budgets started earlier)
        # expire first and a recoverable crash cascades into an abort.
        plan = FaultPlan.of(drop(dst=1))  # black hole
        sim, (a, _b) = self._mini(plan)
        outcome = []

        def caller():
            try:
                yield a.request(1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY)
            except RpcTimeout as exc:
                outcome.append((sim.now, exc))

        def detector():
            yield sim.timeout(2_000)
            a.rpc.abort_peer(1)

        sim.spawn(caller())
        sim.spawn(detector())
        sim.run()
        [(failed_at, exc)] = outcome
        assert failed_at == 2_000  # at detection, well inside the budget
        assert isinstance(exc, RpcTimeout)


# -- end-to-end crash / drain runs ---------------------------------------------

PROG_KW = dict(n_threads=6, n_options=2040, reps=4)
RELIABLE = dict(
    rpc_timeout_ns=20_000, rpc_max_retries=4,
    rpc_backoff_base_ns=10_000, rpc_backoff_jitter_ns=2_000,
)


def _run(n_slaves=3, trace=False, **cfg_kw):
    prog = blackscholes.build(**PROG_KW)
    cfg = DQEMUConfig(**cfg_kw).time_scaled(100.0)
    return Cluster(n_slaves, cfg, trace=trace).run(prog, max_virtual_ms=60_000_000)


@functools.lru_cache(maxsize=None)
def _clean():
    return _run()


class TestCrashTolerance:
    def test_crash_aborts_without_failure_domain(self):
        # Seed behavior: retries alone cannot ride out a fail-stop crash.
        plan = FaultPlan.crash(1, int(_clean().virtual_ns * 0.35), seed=1)
        with pytest.raises(ServiceTimeout) as excinfo:
            _run(fault_plan=plan, **RELIABLE)
        assert "no reply" in str(excinfo.value)

    def test_crash_with_evacuation_completes_degraded(self):
        crash_at = int(_clean().virtual_ns * 0.35)
        plan = FaultPlan.crash(1, crash_at, seed=1)
        r = _run(
            fault_plan=plan,
            evacuation_enabled=True,
            health_aware_placement=True,
            **RELIABLE,
        )
        assert r.exit_code == 0
        assert r.failures is not None
        rec = r.failures.nodes[1]
        assert rec.kind == "crash"
        assert rec.detected_ns >= crash_at
        assert rec.recovered_ns is not None and rec.recovery_ns >= 0
        # Everything the victim held is accounted for: evacuated or lost.
        assert len(rec.evacuated) + len(rec.lost) > 0
        assert "n1 crash" in r.failures.describe()
        # The detector's verdict sticks for the rest of the run.
        assert r.health.state_of(1) is PeerState.DOWN
        # The failure service attributed exactly this recovery's work.
        svc = r.stats.services["failure"]
        assert svc.evacuations == len(rec.evacuated)
        assert svc.lost_threads == len(rec.lost)
        assert svc.rehomed_pages == rec.rehomed_pages
        assert svc.lost_pages == rec.lost_pages

    def test_drain_completes_without_loss(self):
        drain_at = int(_clean().virtual_ns * 0.35)
        plan = FaultPlan.drain(2, drain_at, seed=2)
        r = _run(
            fault_plan=plan,
            evacuation_enabled=True,
            health_aware_placement=True,
            **RELIABLE,
        )
        assert r.exit_code == 0
        assert r.stdout == _clean().stdout  # nothing lost: same answers
        rec = r.failures.nodes[2]
        assert rec.kind == "drain"
        assert rec.evacuated and not rec.lost
        assert rec.rehomed_pages == 0 and rec.lost_pages == 0
        assert rec.recovered_ns is not None
        assert all(target != 2 for _tid, target in rec.evacuated)

    def test_default_run_is_untouched_by_the_machinery(self):
        armed = _run(**RELIABLE)
        plain = _clean()
        assert plain.failures is None and armed.failures is None
        assert plain.placement_skips == {}
        # The failure service row never appears unless the domain is armed,
        # keeping the committed breakdown tables bit-identical.
        assert "failure" not in plain.stats.services
        assert "failure" not in armed.stats.services
        assert armed.virtual_ns == plain.virtual_ns

    def test_custom_health_thresholds_reach_the_tracker(self):
        r = _run(health_suspect_after=3, health_down_after=9)
        assert r.health.suspect_after == 3
        assert r.health.down_after == 9


# -- coherence protocols × failure domains -------------------------------------


class TestCoherenceProtocolCrashes:
    """The non-MSI protocols must ride out the same crashes MSI does."""

    RMW_KW = dict(n_threads=6, n_nodes=3, pages_per_thread=4, passes=3,
                  bcast_beat=8)

    def _rmw_run(self, protocol, trace=False, **cfg_kw):
        prog = memaccess.build_private_rmw(**self.RMW_KW)
        # Readers racing the broadcast writer keep its write-acquisition
        # streak short, so trigger at 3 to make the home migration fire.
        cfg = DQEMUConfig(
            coherence_protocol=protocol, adaptive_window=8,
            migration_trigger=3, **cfg_kw
        ).time_scaled(100.0)
        return Cluster(3, cfg, trace=trace).run(prog, max_virtual_ms=60_000_000)

    def test_crash_with_exclusive_pages_completes_degraded(self):
        # The victim holds Exclusive-clean grants when it dies; eviction
        # writes them off conservatively and the run still finishes.
        clean = self._rmw_run("mesi")
        assert clean.stats.protocol.exclusive_grants > 0
        plan = FaultPlan.crash(2, int(clean.virtual_ns * 0.4), seed=3)
        r = self._rmw_run(
            "mesi", fault_plan=plan,
            evacuation_enabled=True, health_aware_placement=True, **RELIABLE,
        )
        assert r.exit_code == 0
        rec = r.failures.nodes[2]
        assert rec.kind == "crash"
        assert r.stats.protocol.exclusive_grants > 0

    def test_migrated_home_on_crashed_node_reverts(self):
        # Find where the home migration lands, then kill exactly that node:
        # the policy must revert the page's home to the master and the run
        # must still complete.
        clean = self._rmw_run("migrate", trace=True)
        migrations = [
            ev for ev in clean.trace.events if ev.what == "home migrated"
        ]
        assert migrations, "workload no longer triggers a home migration"
        victim = migrations[0].node
        crash_at = int(migrations[0].ts_ns + 1)
        plan = FaultPlan.crash(victim, crash_at, seed=4)
        r = self._rmw_run(
            "migrate", trace=True, fault_plan=plan,
            evacuation_enabled=True, health_aware_placement=True, **RELIABLE,
        )
        assert r.exit_code == 0
        reverted = [
            ev for ev in r.trace.events if ev.what == "home reverted to master"
        ]
        assert reverted and all(ev.node == victim for ev in reverted)
        # Once reverted, no later request is billed against the dead home.
        assert r.failures.nodes[victim].kind == "crash"

    def test_adaptive_rides_out_crash(self):
        clean = self._rmw_run("adaptive")
        plan = FaultPlan.crash(1, int(clean.virtual_ns * 0.5), seed=5)
        r = self._rmw_run(
            "adaptive", fault_plan=plan,
            evacuation_enabled=True, health_aware_placement=True, **RELIABLE,
        )
        assert r.exit_code == 0
        assert r.failures.nodes[1].kind == "crash"


# -- evacuation/restore target selection (health-latched) ----------------------


class TestEvacuationTargeting:
    """Regression: the failure domain's round-robin cursor must consult the
    latched health view — a restored or evacuated thread landing on a
    suspect or draining node risks a second evacuation moments later."""

    def _svc(self, view, candidates=(1, 2, 3)):
        from repro.core.services.failure import FailureDomainService
        from repro.core.stats import RunStats

        return FailureDomainService(
            Simulator(), DQEMUConfig(), None, None, RunStats(), None,
            view, list(candidates), 0, None, lambda: False,
        )

    def test_pick_target_skips_suspect_nodes(self):
        view, tracker = make_view(suspect_after=1, down_after=5)
        svc = self._svc(view)
        tracker.retransmitted(2)
        assert [svc._pick_target() for _ in range(4)] == [1, 3, 1, 3]

    def test_pick_target_never_lands_on_draining_or_failed(self):
        view, _ = make_view()
        svc = self._svc(view)
        view.mark_failed(1)
        view.mark_draining(3)
        assert [svc._pick_target() for _ in range(3)] == [2, 2, 2]

    def test_suspect_pressed_into_service_when_no_healthy_left(self):
        view, tracker = make_view(suspect_after=1, down_after=5)
        svc = self._svc(view)
        view.mark_failed(1)
        view.mark_failed(3)
        tracker.retransmitted(2)
        assert svc._pick_target() == 2

    def test_exhausted_pool_falls_back_to_master(self):
        view, _ = make_view()
        svc = self._svc(view, candidates=(1,))
        assert svc._pick_target(exclude=1) == 0

    def test_rebalance_target_is_least_loaded_usable_node(self):
        class _Threads:
            def __init__(self, loads):
                self.loads = loads

            def on_node(self, n):
                return [object()] * self.loads.get(n, 0)

        class _State:
            def __init__(self, loads):
                self.threads = _Threads(loads)

        view, tracker = make_view(suspect_after=1, down_after=5)
        svc = self._svc(view)
        svc.state = _State({1: 3, 2: 1, 3: 2})
        assert svc._pick_rebalance_target() == 2
        # Suspicion trumps load: the lightest node, once suspect, loses.
        tracker.retransmitted(2)
        assert svc._pick_rebalance_target() == 3
        # Ties break toward the lowest node id.
        svc.state = _State({})
        assert svc._pick_rebalance_target(exclude=1) == 3


# -- checkpoint/restore --------------------------------------------------------


class TestCheckpointBuddy:
    def test_ring_and_degenerate_cases(self):
        from repro.core.services.checkpoint import checkpoint_buddy

        ids = [0, 1, 2, 3]
        assert checkpoint_buddy(1, ids, 0) == 2
        assert checkpoint_buddy(2, ids, 0) == 3
        assert checkpoint_buddy(3, ids, 0) == 1  # ring wraps
        assert checkpoint_buddy(0, ids, 0) == 0  # the master keeps its own
        assert checkpoint_buddy(1, [0, 1], 0) == 0  # single slave -> master


class TestCheckpointRestore:
    ARMED = dict(evacuation_enabled=True, health_aware_placement=True)

    def _interval(self, frac=0.05):
        return max(1, int(_clean().virtual_ns * frac))

    def test_crash_restores_every_thread(self):
        crash_at = int(_clean().virtual_ns * 0.35)
        plan = FaultPlan.crash(1, crash_at, seed=1)
        r = _run(
            fault_plan=plan, checkpoint_interval_ns=self._interval(),
            **self.ARMED, **RELIABLE,
        )
        assert r.exit_code == 0
        rec = r.failures.nodes[1]
        assert rec.restored and not rec.lost and not rec.evacuated
        # Private worker state: rollback re-executes to the exact answers.
        assert r.stdout == _clean().stdout
        svc = r.stats.services["failure"]
        assert svc.restores == len(rec.restored)
        for tid, target, rollback_ns in rec.restored:
            assert target != 1 and rollback_ns > 0
        assert r.failures.restored_threads == len(rec.restored)
        assert r.failures.mean_rollback_ns > 0
        assert "restored" in r.failures.describe()
        p = r.stats.protocol
        assert p.checkpoints_taken >= p.checkpoints_stored > 0
        assert p.checkpoint_bytes > 0

    def test_rollback_shrinks_with_the_interval(self):
        crash_at = int(_clean().virtual_ns * 0.35)
        plan = FaultPlan.crash(1, crash_at, seed=1)
        rollbacks, wire = [], []
        for frac in (0.02, 0.15):
            r = _run(
                fault_plan=plan, checkpoint_interval_ns=self._interval(frac),
                **self.ARMED, **RELIABLE,
            )
            assert r.exit_code == 0
            rollbacks.append(r.failures.mean_rollback_ns)
            wire.append(r.stats.protocol.checkpoint_bytes)
        assert rollbacks[0] is not None and rollbacks[1] is not None
        assert rollbacks[0] < rollbacks[1]  # tighter interval, shorter redo
        assert wire[0] > wire[1]  # paid for with checkpoint wire bytes

    def test_crash_mid_snapshot_discards_the_in_flight_frame(self):
        # Kill the victim the instant it emits a checkpoint: the frame is
        # still on the wire when the node dies.  The master must either
        # never see it (dropped by the fault rules) or discard it on
        # arrival (posthumous frames cannot resurrect state); recovery
        # restores from the last *stored* snapshot or reaps.
        crash_at = int(_clean().virtual_ns * 0.35)
        probe = _run(
            fault_plan=FaultPlan.crash(1, crash_at, seed=1),
            checkpoint_interval_ns=self._interval(0.02),
            trace=True, **self.ARMED, **RELIABLE,
        )
        takes = [
            ev for ev in probe.trace.events
            if ev.node == 1 and ev.what.startswith("checkpoint (")
        ]
        assert takes, "victim never checkpointed before the crash"
        plan = FaultPlan.crash(1, int(takes[-1].ts_ns) + 1, seed=1)
        r = _run(
            fault_plan=plan, checkpoint_interval_ns=self._interval(0.02),
            **self.ARMED, **RELIABLE,
        )
        assert r.exit_code == 0
        rec = r.failures.nodes[1]
        # Every thread is accounted for, and any restore used a snapshot
        # from strictly before the crash (positive rollback).
        assert len(rec.restored) + len(rec.lost) + len(rec.evacuated) > 0
        for _tid, _target, rollback_ns in rec.restored:
            assert rollback_ns > 0

    def test_peer_mode_restores_via_buddy(self):
        crash_at = int(_clean().virtual_ns * 0.35)
        plan = FaultPlan.crash(1, crash_at, seed=1)
        r = _run(
            fault_plan=plan, checkpoint_interval_ns=self._interval(),
            checkpoint_target="peer", **self.ARMED, **RELIABLE,
        )
        assert r.exit_code == 0
        rec = r.failures.nodes[1]
        assert rec.restored and not rec.lost
        assert r.stdout == _clean().stdout
        # Contexts came off the ring buddy at recovery time.
        assert r.stats.services["node.checkpoint"].requests > 0

    def test_peer_holder_crash_loses_only_the_orphaned_snapshots(self):
        # Kill node 1's buddy (node 2) first, then node 1: node 1's
        # snapshots died with their holder, so its threads reap as lost;
        # node 2's own snapshots live on *its* buddy (node 3) and restore.
        crash_at = int(_clean().virtual_ns * 0.35)
        p_buddy = FaultPlan.crash(2, crash_at - 10_000, seed=7)
        p_victim = FaultPlan.crash(1, crash_at, seed=7)
        plan = FaultPlan(
            rules=p_buddy.rules + p_victim.rules, seed=7,
            crashes=p_buddy.crashes + p_victim.crashes,
        )
        r = _run(
            fault_plan=plan, checkpoint_interval_ns=self._interval(),
            checkpoint_target="peer", **self.ARMED, **RELIABLE,
        )
        assert r.exit_code == 0
        holder = r.failures.nodes[2]
        orphan = r.failures.nodes[1]
        assert holder.restored  # fetched from node 3, its ring buddy
        assert orphan.lost and not orphan.restored
        # Best-effort shipping: RPCs against the corpses were written off.
        assert r.stats.protocol.checkpoints_discarded > 0

    @pytest.mark.parametrize("protocol", ["msi", "mesi", "migrate", "adaptive"])
    def test_restore_under_crash_per_protocol(self, protocol):
        harness = TestCoherenceProtocolCrashes()
        clean = harness._rmw_run(protocol)
        plan = FaultPlan.crash(2, int(clean.virtual_ns * 0.4), seed=3)
        r = harness._rmw_run(
            protocol, fault_plan=plan,
            checkpoint_interval_ns=max(1, int(clean.virtual_ns * 0.05)),
            **self.ARMED, **RELIABLE,
        )
        assert r.exit_code == 0
        rec = r.failures.nodes[2]
        assert rec.restored and not rec.lost
        for _tid, target, rollback_ns in rec.restored:
            assert target != 2 and rollback_ns > 0

    def test_rebalance_sheds_load_without_failure_records(self):
        r = _run(
            cores_per_node=1, rebalance_threshold_ns=2_000,
            **self.ARMED, **RELIABLE,
        )
        assert r.exit_code == 0
        assert r.stats.protocol.rebalance_evacuations > 0
        assert r.stdout == _clean().stdout
        # A rebalance is not a failure: no per-node crash/drain records.
        assert not r.failures.nodes

    def test_default_run_has_no_checkpoint_rows(self):
        plain = _clean()
        assert "checkpoint" not in plain.stats.services
        assert "node.checkpoint" not in plain.stats.services
        assert plain.stats.protocol.checkpoints_taken == 0
        assert plain.stats.protocol.rebalance_evacuations == 0
