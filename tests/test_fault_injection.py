"""Fault injection, runtime RPC timeouts, and replay tolerance.

Covers the injector's actions and predicates at the fabric level, the RPC
channel's tombstone bookkeeping, the dispatcher's replay dedup, and
end-to-end cluster runs under lossy plans: a dead message kind must fail
the run loudly with a :class:`ServiceTimeout` naming the service and peer,
while duplication/delay plans must be absorbed correctly.  A final
regression pins the no-fault guarantee: attaching an empty plan changes
nothing, bit for bit.
"""

import pytest

from repro import Cluster, DQEMUConfig, FaultPlan, ServiceTimeout
from repro.errors import ConfigError, NetworkError
from repro.net import Endpoint, Fabric
from repro.net.faults import FaultInjector, clone_frame, delay, drop, duplicate, reorder
from repro.net.messages import Ack, PageData, PageRequest, SyscallReply
from repro.net.rpc import RpcChannel, RpcTimeout
from repro.sim import Simulator
from repro.workloads import mutex_bench


def make_cluster(n=3, plan=None, **kw):
    sim = Simulator()
    fabric = Fabric(sim, **kw)
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, plan).attach(fabric)
    eps = [Endpoint(sim, fabric, i) for i in range(n)]
    return sim, fabric, injector, eps


def collect(sim, ep, kind, out):
    """Subscriber process appending (arrival_ns, msg) tuples to ``out``."""
    q = ep.subscribe(kind)
    while True:
        msg = yield q.get()
        out.append((sim.now, msg))


# -- rule / plan validation -----------------------------------------------------


class TestRuleValidation:
    def test_unknown_action_rejected(self):
        from repro.net.faults import FaultRule

        with pytest.raises(ConfigError, match="unknown fault action"):
            FaultRule(action="corrupt")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError, match="every_nth"):
            drop(every_nth=0)
        with pytest.raises(ConfigError, match="max_count"):
            drop(max_count=0)
        with pytest.raises(ConfigError, match="window is empty"):
            drop(after_ns=100, until_ns=100)
        with pytest.raises(ConfigError, match="delay rule needs"):
            delay(0)
        with pytest.raises(ConfigError, match="copies"):
            duplicate(copies=0)
        with pytest.raises(ConfigError, match="hold_ns"):
            reorder(hold_ns=-1)

    def test_kinds_coerced_to_frozenset(self):
        rule = drop(kinds=["ack", "page_data"])
        assert rule.kinds == frozenset({"ack", "page_data"})

    def test_plan_coerces_and_validates_rules(self):
        plan = FaultPlan(rules=[drop(kinds={"ack"})])
        assert isinstance(plan.rules, tuple)
        with pytest.raises(ConfigError, match="must be FaultRule"):
            FaultPlan(rules=("not a rule",))

    def test_describe_is_readable(self):
        plan = FaultPlan.of(drop(kinds={"page_data"}, every_nth=3, max_count=2))
        text = plan.describe()
        assert "drop" in text and "page_data" in text and "every 3th" in text
        assert FaultPlan().describe() == "no faults"

    def test_config_rejects_bad_fault_settings(self):
        with pytest.raises(ConfigError, match="rpc_timeout_ns"):
            DQEMUConfig(rpc_timeout_ns=0)
        with pytest.raises(ConfigError, match="fault_plan"):
            DQEMUConfig(fault_plan=[drop()])  # a bare list is not a plan


# -- injector actions at the fabric level ---------------------------------------


class TestInjectorActions:
    def test_drop_swallows_frame_and_skips_fabric_stats(self):
        sim, fabric, inj, eps = make_cluster(plan=FaultPlan.of(drop(kinds={"ack"})))
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        sim.spawn(collect(sim, eps[1], "page_request", got))
        eps[0].send(1, Ack())
        eps[0].send(1, PageRequest(page=1))
        sim.run(until=1_000_000)
        kinds = [m.kind for _, m in got]
        assert kinds == ["page_request"]
        assert inj.stats.dropped == 1
        assert inj.stats.by_kind["ack"] == 1
        # Dropped frames never reach the wire: fabric counted only one send.
        assert fabric.stats.messages_sent == 1
        assert "ack" not in fabric.stats.by_kind

    def test_delay_shifts_arrival_deterministically(self):
        def arrival(seed):
            plan = FaultPlan.of(
                delay(10_000, jitter_ns=5_000, kinds={"ack"}), seed=seed
            )
            sim, _fabric, inj, eps = make_cluster(plan=plan)
            got = []
            sim.spawn(collect(sim, eps[1], "ack", got))
            eps[0].send(1, Ack())
            sim.run(until=1_000_000)
            assert inj.stats.delayed == 1
            assert inj.stats.delay_added_ns >= 10_000
            return got[0][0]

        # Same seed, same jitter, same arrival — and the delay is visible.
        assert arrival(7) == arrival(7)
        base_sim, _f, _i, base_eps = make_cluster()
        base = []
        base_sim.spawn(collect(base_sim, base_eps[1], "ack", base))
        base_eps[0].send(1, Ack())
        base_sim.run(until=1_000_000)
        assert arrival(7) >= base[0][0] + 10_000

    def test_duplicate_delivers_copies_that_do_not_alias(self):
        plan = FaultPlan.of(duplicate(copies=2, kinds={"page_data"}))
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "page_data", got))
        eps[0].send(1, PageData(page=9, data=b"x" * 16))
        sim.run(until=1_000_000)
        assert len(got) == 3
        assert inj.stats.duplicated == 2
        frames = [m for _, m in got]
        assert len({id(m) for m in frames}) == 3  # distinct instances
        frames[0].page = 12345  # mutating one delivery reaches no other
        assert frames[1].page == 9 and frames[2].page == 9

    def test_reorder_lets_next_frame_overtake(self):
        plan = FaultPlan.of(reorder(kinds={"ack"}, max_count=1))
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        sim.spawn(collect(sim, eps[1], "page_request", got))
        eps[0].send(1, Ack())  # held
        eps[0].send(1, PageRequest(page=1))  # overtakes, releasing the hold
        sim.run(until=1_000_000)
        kinds = [m.kind for _, m in got]
        assert kinds == ["page_request", "ack"]
        assert inj.stats.reordered == 1

    def test_reorder_flushes_on_quiet_link(self):
        plan = FaultPlan.of(reorder(hold_ns=50_000, kinds={"ack"}))
        sim, _fabric, _inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        eps[0].send(1, Ack())
        sim.run(until=1_000_000)
        assert len(got) == 1
        assert got[0][0] >= 50_000  # delivered, but only after the hold

    def test_attach_twice_rejected(self):
        sim = Simulator()
        f1, f2 = Fabric(sim), Fabric(sim)
        inj = FaultInjector(sim, FaultPlan())
        inj.attach(f1)
        with pytest.raises(NetworkError, match="already attached"):
            inj.attach(f2)


class TestInjectorPredicates:
    def test_every_nth_and_max_count(self):
        plan = FaultPlan.of(drop(kinds={"ack"}, every_nth=2, max_count=2))
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        for _ in range(8):
            eps[0].send(1, Ack())
        sim.run(until=10_000_000)
        # Frames 2 and 4 dropped, then max_count exhausts the rule.
        assert inj.stats.dropped == 2
        assert len(got) == 6

    def test_src_dst_and_window(self):
        plan = FaultPlan.of(drop(kinds={"ack"}, src=0, dst=1, until_ns=1))
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        sim.spawn(collect(sim, eps[2], "ack", got))
        eps[0].send(1, Ack())  # matches (t=0, src 0 -> dst 1): dropped
        eps[0].send(2, Ack())  # wrong dst
        eps[2].send(1, Ack())  # wrong src

        def late():
            yield sim.timeout(10)
            eps[0].send(1, Ack())  # outside the window

        sim.spawn(late())
        sim.run(until=10_000_000)
        assert inj.stats.dropped == 1
        assert len(got) == 3

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.of(
            delay(10_000, kinds={"ack"}), drop(kinds={"ack"})
        )
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        eps[0].send(1, Ack())
        sim.run(until=1_000_000)
        assert inj.stats.delayed == 1 and inj.stats.dropped == 0
        assert len(got) == 1

    def test_injected_copies_bypass_matching(self):
        # A duplicate rule's own output must not be re-duplicated.
        plan = FaultPlan.of(duplicate(copies=1))
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        got = []
        sim.spawn(collect(sim, eps[1], "ack", got))
        eps[0].send(1, Ack())
        sim.run(until=1_000_000)
        assert len(got) == 2
        assert inj.stats.matched == 1


# -- RPC channel: tombstones, duplicate replies, timeouts -----------------------


class TestRpcRobustness:
    def _pair(self):
        sim, _fabric, _inj, eps = make_cluster(2)
        return sim, eps[0], eps[1]

    def test_timeout_fails_call_and_late_reply_is_dropped(self):
        sim, a, b = self._pair()
        failures = []

        def caller():
            try:
                yield a.request(1, PageRequest(page=1), timeout_ns=5_000)
            except RpcTimeout as exc:
                failures.append(exc)

        def sleepy_server():
            q = b.subscribe("page_request")
            msg = yield q.get()
            yield sim.timeout(1_000_000)  # long past the caller's patience
            b.reply(msg, SyscallReply(retval=0))

        sim.spawn(caller())
        sim.spawn(sleepy_server())
        sim.run()
        assert len(failures) == 1
        assert "page_request" in str(failures[0]) and "node 1" in str(failures[0])
        # The late reply found its tombstone instead of crashing the channel.
        assert a.rpc.dropped_replies == 1
        assert a.rpc.in_flight == 0

    def test_duplicated_reply_is_deduplicated(self):
        plan = FaultPlan.of(duplicate(copies=1, kinds={"syscall_reply"}))
        sim, _fabric, _inj, eps = make_cluster(2, plan=plan)
        a, b = eps
        replies = []

        def caller():
            reply = yield a.request(1, PageRequest(page=1))
            replies.append(reply)

        def server():
            q = b.subscribe("page_request")
            msg = yield q.get()
            b.reply(msg, SyscallReply(retval=42))

        sim.spawn(caller())
        sim.spawn(server())
        sim.run()
        assert len(replies) == 1 and replies[0].retval == 42
        assert a.rpc.duplicate_replies == 1

    def test_reply_to_unknown_request_still_raises(self):
        sim, a, _b = self._pair()
        with pytest.raises(NetworkError, match="unknown request"):
            a.rpc.complete(SyscallReply(in_reply_to=424242))

    def test_tombstones_are_bounded(self):
        sim, a, _b = self._pair()
        ch = a.rpc
        for req_id in range(ch.TOMBSTONE_LIMIT * 2):
            ch._remember(req_id, "completed")
        assert ch.tombstones <= ch.TOMBSTONE_LIMIT

    def test_tombstones_expire_after_ttl(self):
        sim, a, _b = self._pair()
        ch = a.rpc
        ch._remember(1, "expired")
        sim.timeout(ch.TOMBSTONE_TTL_NS + 1).add_callback(
            lambda _e: ch._remember(2, "expired")
        )
        sim.run()
        assert ch.tombstones == 1  # the old entry was swept

    def test_clone_frame_copies(self):
        msg = PageData(page=3, data=b"abc")
        twin = clone_frame(msg)
        assert twin is not msg
        assert twin.page == 3 and twin.data == b"abc"
        twin.page = 4
        assert msg.page == 3


class TestDispatcherReplayDedup:
    def test_replayed_frame_is_served_once(self):
        from repro.core.services.base import Dispatcher
        from repro.core.stats import RunStats

        class Once:
            name = "once"
            handled_kinds = frozenset({"page_request"})
            served = 0

            def handle(self, msg):
                self.served += 1
                return None
                yield  # pragma: no cover - generator protocol

        sim = Simulator()
        stats = RunStats()
        d = Dispatcher(sim, stats)
        svc = d.register(Once())
        msg = PageRequest(page=1)
        msg.req_id = 7  # as stamped by the owning fabric at first transmit
        sim.spawn(d.dispatch(msg))
        sim.spawn(d.dispatch(clone_frame(msg)))  # replayed copy, same req_id
        sim.run()
        assert svc.served == 1
        assert stats.services["once"].requests == 1
        assert stats.services["once"].duplicates == 1


# -- fabric edge case (satellite): unknown node ---------------------------------


class TestFabricUnknownNode:
    def test_downlink_backlog_raises_for_unattached_node(self):
        sim, fabric, _inj, eps = make_cluster(2)
        assert fabric.downlink_backlog_ns(1) == 0
        with pytest.raises(NetworkError, match="no endpoint attached for node 9"):
            fabric.downlink_backlog_ns(9)
        with pytest.raises(NetworkError, match="node 9"):
            fabric.endpoint(9)


# -- end-to-end: lossy plans against a real cluster -----------------------------

TIMEOUT_NS = 10_000_000  # 10 ms: far beyond any healthy round trip
RUN_KW = dict(max_virtual_ms=2_000)


def lossy_config(*rules, **kw):
    return DQEMUConfig(
        rpc_timeout_ns=TIMEOUT_NS, fault_plan=FaultPlan.of(*rules), **kw
    )


class TestClusterUnderFaults:
    def test_dropped_page_data_times_out_with_named_service(self):
        """A dead reply path must terminate the run loudly — naming the
        waiting service and the silent peer — instead of hanging."""
        prog = mutex_bench.build(n_threads=2, iters=5)
        cluster = Cluster(n_slaves=2, config=lossy_config(drop(kinds={"page_data"})))
        with pytest.raises(ServiceTimeout) as info:
            cluster.run(prog, **RUN_KW)
        exc = info.value
        assert exc.service == "node.coherence"
        assert exc.request.kind == "page_request"
        msg = str(exc)
        assert "node.coherence" in msg and "page_request" in msg and "node 0" in msg

    def test_dropped_spawn_ack_attributes_to_outermost_waiter(self):
        # The lost ack stalls the master's syscall service, which in turn
        # stalls the clone()'s delegated syscall_request.  With one uniform
        # timeout the outermost waiter's timer (started first) fires first,
        # so cascaded stalls deterministically attribute to the requester.
        prog = mutex_bench.build(n_threads=2, iters=5)
        cluster = Cluster(n_slaves=2, config=lossy_config(drop(kinds={"spawn_ack"})))
        with pytest.raises(ServiceTimeout) as info:
            cluster.run(prog, **RUN_KW)
        assert info.value.service == "node.syscall"
        assert info.value.request.kind == "syscall_request"

    def test_dropped_syscall_reply_attributes_to_node_syscall(self):
        prog = mutex_bench.build(n_threads=2, iters=5)
        cluster = Cluster(
            n_slaves=2, config=lossy_config(drop(kinds={"syscall_reply"}))
        )
        with pytest.raises(ServiceTimeout) as info:
            cluster.run(prog, **RUN_KW)
        assert info.value.service == "node.syscall"

    def test_dropped_futex_wake_attributes_to_futex_service(self):
        # With timeouts armed, wakes are acked requests: a swallowed wake
        # surfaces as the futex service's timeout, not a silent deadlock.
        prog = mutex_bench.build(n_threads=2, iters=20, private=False)
        cluster = Cluster(
            n_slaves=2, config=lossy_config(drop(kinds={"futex_wake"}))
        )
        with pytest.raises(ServiceTimeout) as info:
            cluster.run(prog, **RUN_KW)
        assert info.value.service == "futex"
        assert info.value.request.kind == "futex_wake"

    def test_dropped_invalidate_ack_fails_the_faulting_reader(self):
        # Same cascade shape: the master's coherence service stalls waiting
        # for the lost invalidation ack, and the page fault that triggered
        # it times out first on the requesting node.
        prog = mutex_bench.build(n_threads=2, iters=10, private=False)
        cluster = Cluster(
            n_slaves=2, config=lossy_config(drop(kinds={"invalidate_ack"}))
        )
        with pytest.raises(ServiceTimeout) as info:
            cluster.run(prog, **RUN_KW)
        assert info.value.service == "node.coherence"
        assert info.value.request.kind == "page_request"

    def test_duplication_storm_is_absorbed(self):
        """Duplicating every frame must not change program results: the
        dispatcher and RPC channel drop the replays."""
        clean = Cluster(n_slaves=2).run(
            mutex_bench.build(n_threads=2, iters=10), **RUN_KW
        )
        noisy_cfg = DQEMUConfig(fault_plan=FaultPlan.of(duplicate(copies=1)))
        noisy = Cluster(n_slaves=2, config=noisy_cfg).run(
            mutex_bench.build(n_threads=2, iters=10), **RUN_KW
        )
        assert noisy.exit_code == clean.exit_code
        # stdout line 1 is the guest's self-measured elapsed time, which
        # legitimately shifts when faults add wire traffic; the computed
        # result lines must not.
        assert noisy.stdout.splitlines()[1:] == clean.stdout.splitlines()[1:]
        assert noisy.faults is not None and noisy.faults.duplicated > 0
        # Replayed requests were caught at the dispatcher seam and billed.
        assert sum(s.duplicates for s in noisy.stats.services.values()) > 0

    def test_delay_and_reorder_only_shift_timing(self):
        clean = Cluster(n_slaves=2).run(
            mutex_bench.build(n_threads=2, iters=10), **RUN_KW
        )
        plan = FaultPlan.of(
            delay(20_000, jitter_ns=10_000, kinds={"page_data"}, every_nth=2),
            reorder(kinds={"invalidate"}, every_nth=3),
        )
        shifted = Cluster(
            n_slaves=2, config=DQEMUConfig(fault_plan=plan)
        ).run(mutex_bench.build(n_threads=2, iters=10), **RUN_KW)
        assert shifted.exit_code == clean.exit_code
        assert shifted.stdout.splitlines()[1:] == clean.stdout.splitlines()[1:]
        assert shifted.faults.injected > 0

    def test_generous_timeout_lets_healthy_run_finish(self):
        cfg = DQEMUConfig(rpc_timeout_ns=1_000_000_000)
        result = Cluster(n_slaves=2, config=cfg).run(
            mutex_bench.build(n_threads=2, iters=10), **RUN_KW
        )
        assert result.exit_code == 0


class TestNoFaultRegression:
    def test_empty_plan_is_bit_identical(self):
        """Attaching the injection machinery with nothing to inject must not
        perturb the simulation at all."""
        prog_kw = dict(n_threads=2, iters=10, private=False)
        plain = Cluster(n_slaves=2).run(mutex_bench.build(**prog_kw), **RUN_KW)
        armed = Cluster(
            n_slaves=2, config=DQEMUConfig(fault_plan=FaultPlan())
        ).run(mutex_bench.build(**prog_kw), **RUN_KW)

        assert armed.exit_code == plain.exit_code
        assert armed.stdout == plain.stdout
        assert armed.virtual_ns == plain.virtual_ns
        assert armed.stats == plain.stats  # dataclass equality, all counters
        assert armed.fabric.messages_sent == plain.fabric.messages_sent
        assert armed.fabric.bytes_sent == plain.fabric.bytes_sent
        assert armed.fabric.by_kind == plain.fabric.by_kind
        assert armed.faults is not None and armed.faults.injected == 0
        assert plain.faults is None
