"""FP helper edge cases (IEEE-754 semantics of GA64's double instructions)."""

import math

from hypothesis import given, strategies as st

from repro.dbt.fpu import (
    b2f,
    f2b,
    fcvt_d_l,
    fcvt_l_d,
    fdiv,
    fmax,
    fmin,
    fsqrt,
)

M64 = 2**64 - 1
I64_MAX = 2**63 - 1
I64_MIN = -(2**63)


class TestBitCasts:
    @given(st.floats(allow_nan=False))
    def test_roundtrip_floats(self, x):
        assert b2f(f2b(x)) == x

    @given(st.integers(0, M64))
    def test_roundtrip_bits(self, bits):
        back = f2b(b2f(bits))
        # NaN payloads may not roundtrip identically through Python floats,
        # but non-NaN patterns must.
        if not math.isnan(b2f(bits)):
            assert back == bits

    def test_known_patterns(self):
        assert f2b(0.0) == 0
        assert f2b(1.0) == 0x3FF0_0000_0000_0000
        assert f2b(-2.0) == 0xC000_0000_0000_0000
        assert b2f(0x7FF0_0000_0000_0000) == math.inf


class TestDivision:
    def test_div_by_zero_signs(self):
        assert fdiv(1.0, 0.0) == math.inf
        assert fdiv(-1.0, 0.0) == -math.inf
        assert fdiv(1.0, -0.0) == -math.inf

    def test_zero_over_zero_nan(self):
        assert math.isnan(fdiv(0.0, 0.0))

    def test_nan_over_zero_nan(self):
        assert math.isnan(fdiv(math.nan, 0.0))

    def test_normal_division(self):
        assert fdiv(6.0, 3.0) == 2.0


class TestSqrt:
    def test_negative_nan(self):
        assert math.isnan(fsqrt(-1.0))

    def test_zero(self):
        assert fsqrt(0.0) == 0.0

    @given(st.floats(min_value=0, allow_infinity=False, allow_nan=False))
    def test_matches_math_sqrt(self, x):
        assert fsqrt(x) == math.sqrt(x)


class TestMinMax:
    def test_one_nan_returns_other(self):
        assert fmin(math.nan, 3.0) == 3.0
        assert fmax(3.0, math.nan) == 3.0

    def test_both_nan(self):
        assert math.isnan(fmin(math.nan, math.nan))
        assert math.isnan(fmax(math.nan, math.nan))

    def test_signed_zeros(self):
        assert math.copysign(1.0, fmin(0.0, -0.0)) == -1.0
        assert math.copysign(1.0, fmax(0.0, -0.0)) == 1.0

    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_ordering(self, a, b):
        assert fmin(a, b) <= fmax(a, b)


class TestConversions:
    def test_truncation_toward_zero(self):
        assert fcvt_l_d(f2b(2.9)) == 2
        assert fcvt_l_d(f2b(-2.9)) == (-2) & M64

    def test_nan_converts_to_zero(self):
        assert fcvt_l_d(f2b(math.nan)) == 0

    def test_saturation(self):
        assert fcvt_l_d(f2b(1e30)) == I64_MAX & M64
        assert fcvt_l_d(f2b(-1e30)) == I64_MIN & M64
        assert fcvt_l_d(f2b(math.inf)) == I64_MAX & M64

    def test_int_to_double_negative(self):
        bits = fcvt_d_l((-5) & M64)
        assert b2f(bits) == -5.0

    @given(st.integers(-(2**52), 2**52))
    def test_int_roundtrip_exact_range(self, v):
        assert fcvt_l_d(fcvt_d_l(v & M64)) == v & M64
