"""Guest runtime library ("libc") behaviour tests.

These run real guest programs exercising each runtime routine in isolation
on a small cluster, asserting exact outputs.
"""

import pytest

from repro import Cluster
from repro.guestlib import THREAD_STACK_BYTES, runtime_builder

LONG = dict(max_virtual_ms=600_000)


def run(b, n_slaves=1, **kw):
    return Cluster(n_slaves, kw.pop("config", None)).run(b.assemble(), **LONG, **kw)


def main_wrap(b, body):
    b.label("main")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    body(b)
    b.li("a0", 0)
    b.ld("ra", 8, "sp")
    b.addi("sp", "sp", 16)
    b.ret()


class TestPrint:
    @pytest.mark.parametrize("value", [0, 7, 10, 999, 2**31, 2**63])
    def test_print_u64(self, value):
        b = runtime_builder()

        def body(bb):
            bb.li("a0", value)
            bb.call("rt_print_u64_ln")

        main_wrap(b, body)
        assert run(b).stdout == f"{value}\n"

    def test_print_str(self):
        b = runtime_builder()

        def body(bb):
            bb.la("a0", "msg")
            bb.li("a1", 3)
            bb.call("rt_print_str")

        main_wrap(b, body)
        b.data().label("msg").asciz("abcdef").text()
        assert run(b).stdout == "abc"


class TestTime:
    def test_time_is_monotonic_nonzero(self):
        b = runtime_builder()

        def body(bb):
            bb.call("rt_time_ns")
            bb.mv("s0", "a0")
            # burn some cycles
            bb.li("t0", 1000)
            bb.label(".spin")
            bb.addi("t0", "t0", -1)
            bb.bnez("t0", ".spin")
            bb.call("rt_time_ns")
            bb.sub("a0", "a0", "s0")
            bb.call("rt_print_u64_ln")

        b.label("main")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.sd("s0", 0, "sp")
        body(b)
        b.li("a0", 0)
        b.ld("ra", 8, "sp")
        b.ld("s0", 0, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        out = int(run(b).stdout)
        assert out > 0


class TestMalloc:
    def test_allocations_are_disjoint_and_aligned(self):
        b = runtime_builder()

        def body(bb):
            bb.li("a0", 24)
            bb.call("rt_malloc")
            bb.mv("s0", "a0")
            bb.li("a0", 100)
            bb.call("rt_malloc")
            # second - first >= 32 (rounded to 16) and both 16-aligned
            bb.sub("t0", "a0", "s0")
            bb.mv("a0", "t0")
            bb.call("rt_print_u64_ln")
            bb.andi("a0", "s0", 15)
            bb.call("rt_print_u64_ln")

        b.label("main")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.sd("s0", 0, "sp")
        body(b)
        b.li("a0", 0)
        b.ld("ra", 8, "sp")
        b.ld("s0", 0, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        lines = run(b).stdout.splitlines()
        assert int(lines[0]) >= 32
        assert int(lines[1]) == 0

    def test_huge_allocation_gets_fresh_arena(self):
        b = runtime_builder()

        def body(bb):
            bb.li("a0", 0x300000)  # 3 MiB > arena size
            bb.call("rt_malloc")
            bb.snez("a0", "a0")
            bb.call("rt_print_u64_ln")
            # and the arena still works afterwards
            bb.li("a0", 64)
            bb.call("rt_malloc")
            bb.snez("a0", "a0")
            bb.call("rt_print_u64_ln")

        main_wrap(b, body)
        assert run(b).stdout == "1\n1\n"

    def test_allocation_is_writable(self):
        b = runtime_builder()

        def body(bb):
            bb.li("a0", 4096)
            bb.call("rt_malloc")
            bb.li("t0", 0x1234)
            bb.sd("t0", 0, "a0")
            bb.ld("a0", 0, "a0")
            bb.call("rt_print_u64_ln")

        main_wrap(b, body)
        assert run(b).stdout == f"{0x1234}\n"


class TestThreadCreate:
    def test_handle_holds_tid_and_ctid_clears(self):
        b = runtime_builder()

        def body(bb):
            bb.la("a0", "worker")
            bb.li("a1", 0)
            bb.call("rt_thread_create")
            bb.mv("s0", "a0")
            bb.ld("t0", 8, "s0")  # stashed tid
            bb.mv("a0", "t0")
            bb.call("rt_print_u64_ln")
            bb.mv("a0", "s0")
            bb.call("rt_join")
            bb.ld("a0", 0, "s0")  # ctid word cleared by the kernel
            bb.call("rt_print_u64_ln")

        b.label("main")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.sd("s0", 0, "sp")
        body(b)
        b.li("a0", 0)
        b.ld("ra", 8, "sp")
        b.ld("s0", 0, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        b.label("worker")
        b.li("a0", 0)
        b.ret()
        out = run(b).stdout.splitlines()
        assert int(out[0]) == 2  # main is tid 1, first child tid 2
        assert int(out[1]) == 0

    def test_thread_arg_passed(self):
        b = runtime_builder()

        def body(bb):
            bb.la("a0", "worker")
            bb.li("a1", 4242)
            bb.call("rt_thread_create")
            bb.mv("a0", "a0")
            bb.call("rt_join")
            bb.la("t0", "cell")
            bb.ld("a0", 0, "t0")
            bb.call("rt_print_u64_ln")

        main_wrap(b, body)
        b.label("worker")
        b.la("t0", "cell")
        b.sd("a0", 0, "t0")
        b.li("a0", 0)
        b.ret()
        b.data().align(8).label("cell").quad(0).text()
        assert run(b, n_slaves=2).stdout == "4242\n"

    def test_thread_stack_is_private_and_big_enough(self):
        """Child recursion must not clobber other threads' state."""
        b = runtime_builder()

        def body(bb):
            for _ in range(2):
                bb.la("a0", "worker")
                bb.li("a1", 0)
                bb.call("rt_thread_create")
                bb.mv("a0", "a0")
                bb.call("rt_join")
            bb.la("t0", "ok")
            bb.ld("a0", 0, "t0")
            bb.call("rt_print_u64_ln")

        main_wrap(b, body)
        # worker uses a large stack buffer (half the thread stack)
        b.label("worker")
        depth = THREAD_STACK_BYTES // 2
        b.li("t0", depth)
        b.sub("sp", "sp", "t0")
        b.sd("zero", 0, "sp")  # touch the deep end
        b.add("sp", "sp", "t0")
        b.la("t1", "ok")
        b.li("t2", 1)
        b.amoadd("t3", "t2", "t1")
        b.li("a0", 0)
        b.ret()
        b.data().align(8).label("ok").quad(0).text()
        assert run(b, n_slaves=2).stdout == "2\n"


class TestSpinlock:
    def test_spinlock_mutual_exclusion_intra_node(self):
        b = runtime_builder()

        def body(bb):
            for k in range(2):
                bb.la("a0", "worker")
                bb.li("a1", 0)
                bb.call("rt_thread_create")
                bb.la("t0", "handles")
                bb.sd("a0", 8 * k, "t0")
            for off in (0, 8):
                bb.la("t0", "handles")
                bb.ld("a0", off, "t0")
                bb.call("rt_join")
            bb.la("t0", "counter")
            bb.ld("a0", 0, "t0")
            bb.call("rt_print_u64_ln")

        main_wrap(b, body)
        b.label("worker")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.sd("s0", 0, "sp")
        b.li("s0", 300)
        b.label(".w")
        b.la("a0", "slock")
        b.call("rt_spin_lock")
        b.la("t0", "counter")
        b.ld("t1", 0, "t0")
        b.addi("t1", "t1", 1)
        b.sd("t1", 0, "t0")
        b.la("a0", "slock")
        b.call("rt_spin_unlock")
        b.addi("s0", "s0", -1)
        b.bnez("s0", ".w")
        b.li("a0", 0)
        b.ld("ra", 8, "sp")
        b.ld("s0", 0, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        b.data().align(8)
        b.label("slock").quad(0)
        b.label("counter").quad(0)
        b.label("handles").quad(0, 0)
        b.text()
        assert run(b, n_slaves=1).stdout == "600\n"
