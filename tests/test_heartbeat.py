"""Active liveness: lease-based heartbeat failure detection.

Covers the heartbeat configuration surface (validation, derived lease,
detection bound, time scaling), the :class:`HealthTracker` evidence-merging
and exactly-once guarantees the detector relies on, the quiet-victim
regression (a crash on a node nobody calls hangs the run with only passive
detection and completes degraded within the bound once heartbeats are on),
the adaptive checkpoint interval derived from the detection bound, and the
detector's behavior under every wire-fault primitive — a single delayed,
duplicated, or reordered renewal must never produce a false ``node_failed``,
and a healed partition or drop window must demote and then recover the peer.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import DQEMUConfig
from repro.errors import ConfigError, SimulationError
from repro.net.faults import FaultPlan, delay, drop, duplicate, reorder
from repro.net.health import HealthTracker, PeerState
from repro.sim.engine import Simulator
from repro.workloads import pi_taylor

RUN_KW = dict(max_virtual_ms=60_000_000)


# ---------------------------------------------------------------------------
# Configuration surface
# ---------------------------------------------------------------------------


class TestHeartbeatConfig:
    def test_defaults_off(self):
        cfg = DQEMUConfig()
        assert cfg.heartbeat_interval_ns is None
        assert cfg.heartbeat_lease_ns is None
        assert cfg.checkpoint_lease_factor is None
        assert cfg.effective_heartbeat_lease_ns is None
        assert cfg.heartbeat_detection_bound_ns() is None

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigError, match="positive"):
            DQEMUConfig(heartbeat_interval_ns=0, evacuation_enabled=True,
                        rpc_timeout_ns=1000)

    def test_interval_requires_evacuation(self):
        with pytest.raises(ConfigError, match="evacuation_enabled"):
            DQEMUConfig(heartbeat_interval_ns=1000)

    def test_lease_requires_interval(self):
        with pytest.raises(ConfigError, match="heartbeat_interval_ns"):
            DQEMUConfig(heartbeat_lease_ns=4000)

    def test_lease_must_cover_two_renewals(self):
        with pytest.raises(ConfigError, match="two renewal"):
            DQEMUConfig(heartbeat_interval_ns=1000, heartbeat_lease_ns=1999,
                        evacuation_enabled=True, rpc_timeout_ns=1000)

    def test_lease_defaults_to_four_intervals(self):
        cfg = DQEMUConfig(heartbeat_interval_ns=1000,
                          evacuation_enabled=True, rpc_timeout_ns=1000)
        assert cfg.effective_heartbeat_lease_ns == 4000

    def test_explicit_lease_wins(self):
        cfg = DQEMUConfig(heartbeat_interval_ns=1000, heartbeat_lease_ns=9000,
                          evacuation_enabled=True, rpc_timeout_ns=1000)
        assert cfg.effective_heartbeat_lease_ns == 9000

    def test_detection_bound_formula(self):
        cfg = DQEMUConfig(heartbeat_interval_ns=1000,
                          evacuation_enabled=True, rpc_timeout_ns=1000)
        # lease + (down_after + 1) monitor checks + one-way delivery.
        expected = (
            4000
            + (cfg.health_down_after + 1) * 1000
            + cfg.one_way_latency_ns
        )
        assert cfg.heartbeat_detection_bound_ns() == expected

    def test_time_scaled_scales_heartbeat_knobs(self):
        cfg = DQEMUConfig(heartbeat_interval_ns=10_000,
                          heartbeat_lease_ns=40_000,
                          evacuation_enabled=True,
                          rpc_timeout_ns=1_000_000).time_scaled(10.0)
        assert cfg.heartbeat_interval_ns == 1_000
        assert cfg.heartbeat_lease_ns == 4_000

    def test_time_scaled_preserves_lease_invariant(self):
        # Integer truncation at extreme scales must not let the lease fall
        # below two renewal intervals (which would fail validation).
        cfg = DQEMUConfig(heartbeat_interval_ns=3, heartbeat_lease_ns=6,
                          evacuation_enabled=True,
                          rpc_timeout_ns=1_000_000).time_scaled(100.0)
        assert cfg.heartbeat_interval_ns == 1
        assert cfg.heartbeat_lease_ns >= 2 * cfg.heartbeat_interval_ns


class TestAdaptiveCheckpointInterval:
    """Satellite: checkpoint cadence keyed to the detection bound."""

    def test_factor_requires_interval(self):
        with pytest.raises(ConfigError, match="heartbeat_interval_ns"):
            DQEMUConfig(checkpoint_lease_factor=0.5)

    def test_factor_must_be_positive(self):
        with pytest.raises(ConfigError, match="positive"):
            DQEMUConfig(checkpoint_lease_factor=0.0,
                        heartbeat_interval_ns=1000,
                        evacuation_enabled=True, rpc_timeout_ns=1000)

    def test_factor_excludes_explicit_interval(self):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            DQEMUConfig(checkpoint_lease_factor=0.5,
                        checkpoint_interval_ns=5000,
                        heartbeat_interval_ns=1000,
                        evacuation_enabled=True, rpc_timeout_ns=1000)

    def test_derivation(self):
        cfg = DQEMUConfig(checkpoint_lease_factor=0.5,
                          heartbeat_interval_ns=1000,
                          evacuation_enabled=True, rpc_timeout_ns=1000)
        bound = cfg.heartbeat_detection_bound_ns()
        assert cfg.effective_checkpoint_interval_ns == int(0.5 * bound)

    def test_explicit_interval_passes_through(self):
        cfg = DQEMUConfig(checkpoint_interval_ns=7000,
                          evacuation_enabled=True, rpc_timeout_ns=1000)
        assert cfg.effective_checkpoint_interval_ns == 7000

    def test_off_by_default(self):
        assert DQEMUConfig().effective_checkpoint_interval_ns is None

    def test_tiny_factor_clamps_to_one(self):
        cfg = DQEMUConfig(checkpoint_lease_factor=1e-9,
                          heartbeat_interval_ns=1000,
                          evacuation_enabled=True, rpc_timeout_ns=1000)
        assert cfg.effective_checkpoint_interval_ns == 1


# ---------------------------------------------------------------------------
# HealthTracker: evidence merging + exactly-once down reporting
# ---------------------------------------------------------------------------


class TestHealthEvidence:
    def tracker(self, **kw):
        fired = []
        t = HealthTracker(sim=Simulator(), **kw)
        t.on_down.append(fired.append)
        return t, fired

    def test_lease_misses_escalate_like_rpc_windows(self):
        t, fired = self.tracker(suspect_after=2, down_after=3)
        t.lease_missed(4)
        assert t.state_of(4) is PeerState.UP
        t.lease_missed(4)
        assert t.state_of(4) is PeerState.SUSPECT
        assert fired == []
        t.lease_missed(4)
        assert t.state_of(4) is PeerState.DOWN
        assert fired == [4]
        assert t.down_evidence(4) == "lease-expiry"
        assert t.peer(4).lease_misses == 3

    def test_rpc_and_lease_evidence_merge(self):
        # Evidence of both kinds accumulates in ONE consecutive-failure
        # count; the demotion is attributed to whichever fired last.
        t, fired = self.tracker(suspect_after=2, down_after=3)
        t.lease_missed(2)
        t.retransmitted(2)
        t.lease_missed(2)
        assert t.state_of(2) is PeerState.DOWN
        assert fired == [2]
        assert t.down_evidence(2) == "lease-expiry"

    def test_exhausted_budget_attributes_rpc(self):
        t, fired = self.tracker()
        t.exhausted_budget(3)
        assert fired == [3]
        assert t.down_evidence(3) == "rpc-timeout"

    def test_down_evidence_defaults_to_rpc(self):
        t, _ = self.tracker()
        assert t.down_evidence(9) == "rpc-timeout"

    def test_on_down_fires_exactly_once_across_racing_evidence(self):
        # Satellite: the failure domain's recovery must run once per peer
        # even when rpc-timeout and lease-expiry evidence race, and even
        # when the tracker state heals and relapses afterwards.
        t, fired = self.tracker(suspect_after=1, down_after=2)
        t.lease_missed(5)
        t.exhausted_budget(5)  # transitions DOWN, fires
        t.lease_missed(5)  # already down: no re-fire
        t.exhausted_budget(5)  # already down: no re-fire
        assert fired == [5]
        t.record_success(5)  # heals the tracker state...
        assert t.state_of(5) is PeerState.UP
        t.exhausted_budget(5)  # ...but a relapse must not re-run recovery
        assert t.state_of(5) is PeerState.DOWN
        assert fired == [5]

    def test_record_success_recovers_suspect(self):
        # Satellite: a renewal that arrives in time demotes suspicion back
        # to up and clears the accumulated evidence.
        t, fired = self.tracker(suspect_after=2, down_after=5)
        t.lease_missed(1)
        t.lease_missed(1)
        assert t.state_of(1) is PeerState.SUSPECT
        t.record_success(1)
        assert t.state_of(1) is PeerState.UP
        assert t.peer(1).consecutive_failures == 0
        assert fired == []
        # The healed peer needs the full threshold again to go down.
        t.lease_missed(1)
        assert t.state_of(1) is PeerState.UP


# ---------------------------------------------------------------------------
# Quiet-victim regression (end-to-end)
# ---------------------------------------------------------------------------

N_SLAVES = 3
VICTIM = 3


def _cfg(**kw):
    return DQEMUConfig(
        rpc_timeout_ns=5_000_000,
        rpc_max_retries=4,
        rpc_backoff_base_ns=10_000,
        rpc_backoff_jitter_ns=2_000,
        evacuation_enabled=True,
        health_aware_placement=True,
        **kw,
    ).time_scaled(100.0)


def _quiet_prog():
    return pi_taylor.build(n_threads=3, terms=600, reps=2)


class TestQuietVictim:
    """Satellite: the regression the heartbeat detector exists to fix."""

    @pytest.fixture(scope="class")
    def clean(self):
        result = Cluster(N_SLAVES, _cfg()).run(_quiet_prog(), **RUN_KW)
        assert result.exit_code == 0
        return result

    def plan(self, clean):
        return FaultPlan.crash(VICTIM, int(0.5 * clean.virtual_ns), seed=7)

    def test_passive_only_hangs(self, clean):
        # Nobody has a call outstanding against the victim, so the generous
        # retry budget never trips and the join starves: the simulator runs
        # out of events with threads still blocked.
        with pytest.raises(SimulationError, match="deadlock|budget"):
            Cluster(N_SLAVES, _cfg(fault_plan=self.plan(clean))).run(
                _quiet_prog(), **RUN_KW
            )

    def test_heartbeat_bounds_detection(self, clean):
        interval = max(1, clean.virtual_ns // 50)
        config = _cfg(fault_plan=self.plan(clean)).with_options(
            heartbeat_interval_ns=interval
        )
        result = Cluster(N_SLAVES, config).run(_quiet_prog(), **RUN_KW)
        assert result.exit_code == 0  # completes degraded
        rec = result.failures.nodes[VICTIM]
        assert rec.kind == "crash"
        assert rec.evidence == "lease-expiry"
        detection = rec.detected_ns - int(0.5 * clean.virtual_ns)
        assert 0 < detection <= config.heartbeat_detection_bound_ns()
        assert result.failures.lease_detections == 1
        assert result.failures.rpc_detections == 0
        # The victim's running worker died with it; the run degrades.
        assert result.failures.lost_threads > 0
        proto = result.stats.protocol
        assert proto.heartbeats_sent > 0
        assert proto.heartbeats_received > 0
        assert proto.heartbeat_lease_expiries > 0
        assert proto.heartbeat_bytes > 0
        # Both service rows exist: the master detector and the node sender.
        assert "heartbeat" in result.stats.services
        assert "node.heartbeat" in result.stats.services

    def test_adaptive_checkpoint_restores(self, clean):
        # Satellite: checkpoint cadence derived from the detection bound.
        # Crash late enough that the victim's worker has lived past at
        # least one derived snapshot interval.
        crash_at = int(0.7 * clean.virtual_ns)
        plan = FaultPlan.crash(VICTIM, crash_at, seed=7)
        interval = max(1, clean.virtual_ns // 50)
        config = _cfg(fault_plan=plan).with_options(
            heartbeat_interval_ns=interval,
            checkpoint_lease_factor=0.5,
        )
        derived = config.effective_checkpoint_interval_ns
        assert derived == int(0.5 * config.heartbeat_detection_bound_ns())
        result = Cluster(N_SLAVES, config).run(_quiet_prog(), **RUN_KW)
        assert result.exit_code == 0
        rec = result.failures.nodes[VICTIM]
        # The snapshot cadence tracks the detector: what the victim held
        # restores instead of being lost.
        assert rec.restored
        assert not rec.lost
        assert result.stats.protocol.checkpoints_taken > 0


# ---------------------------------------------------------------------------
# Heartbeats under wire faults: no false positives, partitions heal
# ---------------------------------------------------------------------------


class TestHeartbeatUnderWireFaults:
    """Satellite: the detector must tolerate every FaultPlan primitive."""

    @pytest.fixture(scope="class")
    def clean(self):
        result = Cluster(N_SLAVES, _cfg()).run(_quiet_prog(), **RUN_KW)
        assert result.exit_code == 0
        return result

    def run_with(self, plan, clean, **hb_kw):
        interval = max(1, clean.virtual_ns // 50)
        config = _cfg(fault_plan=plan).with_options(
            heartbeat_interval_ns=interval, **hb_kw
        )
        result = Cluster(N_SLAVES, config).run(_quiet_prog(), **RUN_KW)
        return result, config

    def interval(self, clean):
        return max(1, clean.virtual_ns // 50)

    def test_single_delayed_renewal_no_false_positive(self, clean):
        # One renewal held for three intervals: within the default 4x
        # lease, so the peer never even turns suspect.
        iv = self.interval(clean)
        plan = FaultPlan.of(
            delay(3 * iv, kinds={"heartbeat"}, src=1, max_count=1), seed=11
        )
        result, _ = self.run_with(plan, clean)
        assert result.exit_code == 0
        assert result.failures is None or not result.failures.nodes
        assert result.health.state_of(1) is PeerState.UP
        assert result.health.peer(1).lease_misses == 0

    def test_duplicated_renewals_are_harmless(self, clean):
        plan = FaultPlan.of(duplicate(copies=2, kinds={"heartbeat"}), seed=12)
        result, _ = self.run_with(plan, clean)
        assert result.exit_code == 0
        assert result.failures is None or not result.failures.nodes
        # Extra copies hit the dispatcher's req-id dedup, not the lease.
        dups = result.stats.services["heartbeat"].duplicates
        assert dups > 0

    def test_reordered_renewals_are_harmless(self, clean):
        iv = self.interval(clean)
        plan = FaultPlan.of(
            reorder(hold_ns=iv // 2, kinds={"heartbeat"}), seed=13
        )
        result, _ = self.run_with(plan, clean)
        assert result.exit_code == 0
        assert result.failures is None or not result.failures.nodes

    def test_drop_window_suspects_then_heals(self, clean):
        # Silence one slave's renewals for a window longer than the lease:
        # suspicion accrues, but renewals resume before the down threshold
        # and the peer recovers — no node_failed.
        iv = self.interval(clean)
        lease = 4 * iv
        start = int(0.2 * clean.virtual_ns)
        plan = FaultPlan.of(
            drop(kinds={"heartbeat"}, src=2,
                 after_ns=start, until_ns=start + lease + 3 * iv),
            seed=14,
        )
        result, _ = self.run_with(plan, clean)
        assert result.exit_code == 0
        assert result.failures is None or not result.failures.nodes
        assert result.health.state_of(2) is PeerState.UP
        assert result.health.peer(2).lease_misses > 0  # it was noticed

    def test_partition_heals_back_to_up(self, clean):
        iv = self.interval(clean)
        lease = 4 * iv
        start = int(0.2 * clean.virtual_ns)
        plan = FaultPlan.partition([2], start, start + lease + 2 * iv, seed=15)
        result, _ = self.run_with(plan, clean)
        assert result.exit_code == 0
        assert result.failures is None or not result.failures.nodes
        assert result.health.state_of(2) is PeerState.UP
        assert result.health.peer(2).lease_misses > 0
