"""Heterogeneous-cluster tests (paper §1: nodes with different cores/clocks)."""

import pytest

from repro import Cluster, DQEMUConfig
from repro.errors import ConfigError
from repro.workloads import pi_taylor


class TestConfig:
    def test_overrides_resolved(self):
        cfg = DQEMUConfig(node_cores={1: 8}, node_ghz={2: 1.1})
        assert cfg.cores_of(1) == 8
        assert cfg.cores_of(2) == 4
        assert cfg.ghz_of(2) == 1.1
        assert cfg.ghz_of(1) == 3.3

    def test_validation(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(node_cores={1: 0})
        with pytest.raises(ConfigError):
            DQEMUConfig(node_ghz={1: 0.0})


class TestExecution:
    def test_results_identical_on_heterogeneous_cluster(self):
        prog = pi_taylor.build(n_threads=8, terms=100, reps=1)
        cfg = DQEMUConfig(node_cores={1: 2, 2: 8}, node_ghz={1: 1.0})
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stdout == pi_taylor.reference_output(100)

    def test_fat_node_finishes_its_share_faster(self):
        """Same thread count per node; the 8-core 2x-clock node's threads
        should finish in much less virtual time than the 1-core node's."""
        prog = pi_taylor.build(n_threads=8, terms=400, reps=4)
        cfg = DQEMUConfig(
            node_cores={1: 1, 2: 8},
            node_ghz={1: 1.65, 2: 3.3},
        ).time_scaled(1000)
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stdout == pi_taylor.reference_output(400)
        by_node = {1: [], 2: []}
        for ts in r.stats.threads.values():
            if ts.tid == 1:
                continue
            by_node[ts.node].append(ts.finished_ns - ts.created_ns)
        slow = max(by_node[1])
        fast = max(by_node[2])
        # node 1: 4 threads on 1 core at half clock; node 2: 4 threads on 8
        # cores at full clock -> at least ~4x lifetime difference.
        assert slow > 3 * fast

    def test_slow_clock_scales_execute_time(self):
        prog = pi_taylor.build(n_threads=4, terms=200, reps=2)
        base = Cluster(1, DQEMUConfig().time_scaled(1000)).run(
            prog, max_virtual_ms=600_000
        )
        slow = Cluster(
            1, DQEMUConfig(node_ghz={1: 3.3 / 2}).time_scaled(1000)
        ).run(prog, max_virtual_ms=600_000)
        assert slow.stdout == base.stdout
        # worker execute time roughly doubles at half the clock
        b = sum(t.execute_ns for t in base.stats.threads.values() if t.tid != 1)
        s = sum(t.execute_ns for t in slow.stats.threads.values() if t.tid != 1)
        assert 1.7 < s / b < 2.3
