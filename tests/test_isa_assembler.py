"""Assembler, disassembler and builder tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError
from repro.isa import (
    AsmBuilder,
    DEFAULT_TEXT_BASE,
    SPECS,
    assemble,
    decode,
    disassemble_word,
    format_instruction,
)
from repro.isa.assembler import _li_sequence


def text_words(prog):
    data = prog.text.data
    return [int.from_bytes(data[i : i + 4], "little") for i in range(0, len(data), 4)]


def decode_text(prog):
    return [decode(w) for w in text_words(prog)]


class TestAssembler:
    def test_minimal_program(self):
        prog = assemble("_start:\n  addi a0, zero, 5\n  ecall\n")
        instrs = decode_text(prog)
        assert instrs[0].mnemonic == "addi"
        assert instrs[0].rd == 10
        assert instrs[0].imm == 5
        assert instrs[1].mnemonic == "ecall"
        assert prog.entry == DEFAULT_TEXT_BASE

    def test_load_store_operands(self):
        prog = assemble("_start:\n  ld a0, 8(sp)\n  sd a1, -16(s0)\n")
        ld, sd = decode_text(prog)
        assert (ld.rd, ld.rs1, ld.imm) == (10, 2, 8)
        assert (sd.rs2, sd.rs1, sd.imm) == (11, 8, -16)

    def test_branch_to_label_backward(self):
        prog = assemble("_start:\nloop:\n  addi t0, t0, 1\n  bne t0, t1, loop\n")
        _, bne = decode_text(prog)
        assert bne.imm == -4

    def test_branch_to_label_forward(self):
        prog = assemble("_start:\n  beq a0, zero, done\n  nop\ndone:\n  ecall\n")
        beq = decode_text(prog)[0]
        assert beq.imm == 8

    def test_jal_and_call(self):
        prog = assemble("_start:\n  call func\n  ecall\nfunc:\n  ret\n")
        callee = decode_text(prog)[0]
        assert callee.mnemonic == "jal"
        assert callee.rd == 1  # ra
        assert callee.imm == 8

    def test_atomics_syntax(self):
        prog = assemble(
            "_start:\n  lr t0, (a0)\n  sc t1, t2, (a0)\n  cas t3, t4, (a1)\n"
        )
        lr, sc, cas = decode_text(prog)
        assert (lr.rd, lr.rs1) == (5, 10)
        assert (sc.rd, sc.rs2, sc.rs1) == (6, 7, 10)
        assert (cas.rd, cas.rs2, cas.rs1) == (28, 29, 11)

    def test_li_small_uses_addi(self):
        prog = assemble("_start:\n  li a0, 100\n")
        (instr,) = decode_text(prog)
        assert instr.mnemonic == "addi"
        assert instr.imm == 100

    def test_li_wide_uses_movz_movk(self):
        prog = assemble("_start:\n  li a0, 0x123456789ABC\n")
        instrs = decode_text(prog)
        assert instrs[0].mnemonic == "movz"
        assert all(i.mnemonic == "movk" for i in instrs[1:])
        assert len(instrs) == 3

    def test_li_minus_one_uses_movn(self):
        prog = assemble("_start:\n  li a0, -1\n")
        # -1 doesn't fit imm14? it does: addi a0, zero, -1
        (instr,) = decode_text(prog)
        assert instr.mnemonic == "addi"
        assert instr.imm == -1

    def test_li_large_negative_uses_movn(self):
        prog = assemble("_start:\n  li a0, -100000\n")
        instrs = decode_text(prog)
        assert instrs[0].mnemonic == "movn"

    def test_la_emits_four_instructions(self):
        prog = assemble("_start:\n  la a0, var\n  ecall\n.data\nvar: .quad 1\n")
        instrs = decode_text(prog)
        assert [i.mnemonic for i in instrs[:4]] == ["movz", "movk", "movk", "movk"]

    def test_data_section_layout_and_symbols(self):
        prog = assemble(
            "_start:\n  nop\n.data\nx: .quad 0x1122334455667788\ny: .word 7\n"
        )
        x = prog.symbol("x")
        assert x % 4096 == 0  # .data starts on a page boundary
        assert prog.symbol("y") == x + 8
        data = prog.sections[".data"].data
        assert data[:8] == (0x1122334455667788).to_bytes(8, "little")
        assert data[8:12] == (7).to_bytes(4, "little")

    def test_quad_of_label_resolves(self):
        prog = assemble("_start:\n  nop\n.data\nptr: .quad target\ntarget: .quad 0\n")
        data = prog.sections[".data"].data
        stored = int.from_bytes(data[:8], "little")
        assert stored == prog.symbol("target")

    def test_bss_reserves_zeroed_space(self):
        prog = assemble("_start:\n  nop\n.bss\nbuf: .space 8192\nend_marker: .space 8\n")
        assert prog.symbol("end_marker") - prog.symbol("buf") == 8192
        assert prog.sections[".bss"].base % 4096 == 0

    def test_asciz(self):
        prog = assemble('_start:\n  nop\n.data\nmsg: .asciz "hi\\n"\n')
        data = prog.sections[".data"].data
        assert bytes(data[:4]) == b"hi\n\x00"

    def test_align_in_data(self):
        prog = assemble("_start:\n  nop\n.data\na: .byte 1\n.align 8\nb: .quad 2\n")
        assert prog.symbol("b") % 8 == 0

    def test_label_plus_offset(self):
        prog = assemble(
            "_start:\n  la a0, arr+16\n  ecall\n.data\narr: .space 32\n"
        )
        # reconstruct the movz/movk constant
        instrs = decode_text(prog)[:4]
        value = 0
        for ins in instrs:
            if ins.mnemonic == "movz":
                value = ins.imm << (16 * ins.hw)
            else:
                value |= ins.imm << (16 * ins.hw)
        assert value == prog.symbol("arr") + 16

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble(
            "# leading comment\n\n_start:  # trailing\n  nop // c++ style\n"
        )
        assert len(text_words(prog)) == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("_start:\nx:\n nop\nx:\n nop\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("_start:\n  frobnicate a0\n")

    def test_unknown_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="unknown symbol"):
            assemble("_start:\n  beq a0, a1, nowhere\n")

    def test_missing_entry_rejected(self):
        with pytest.raises(AssemblerError, match="entry symbol"):
            assemble("main:\n  nop\n")

    def test_custom_entry_symbol(self):
        prog = assemble("main:\n  nop\n", entry_symbol="main")
        assert prog.entry == DEFAULT_TEXT_BASE

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble("_start:\n nop\n.data\n  addi a0, a0, 1\n")

    def test_sections_do_not_overlap(self):
        prog = assemble(
            "_start:\n  nop\n.data\nd: .space 100\n.bss\nb: .space 100\n"
        )
        assert prog.overlapping_sections() == []

    def test_hint_instruction(self):
        prog = assemble("_start:\n  hint 7\n")
        (instr,) = decode_text(prog)
        assert instr.mnemonic == "hint"
        assert instr.imm == 7


class TestPseudoExpansions:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("mv a0, a1", ("addi", 10, 11, 0)),
            ("seqz a0, a1", ("sltiu", 10, 11, 1)),
        ],
    )
    def test_simple_pseudo(self, src, expected):
        prog = assemble(f"_start:\n  {src}\n")
        (instr,) = decode_text(prog)
        m, rd, rs1, imm = expected
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.imm) == (m, rd, rs1, imm)

    def test_bgt_swaps_operands(self):
        prog = assemble("_start:\nx:\n  bgt a0, a1, x\n")
        (instr,) = decode_text(prog)
        assert instr.mnemonic == "blt"
        assert (instr.rs1, instr.rs2) == (11, 10)

    def test_ret_is_jalr_ra(self):
        prog = assemble("_start:\n  ret\n")
        (instr,) = decode_text(prog)
        assert (instr.mnemonic, instr.rd, instr.rs1) == ("jalr", 0, 1)


class TestLiSequence:
    @given(st.integers(-(2**63), 2**63 - 1))
    def test_li_materializes_any_value(self, value):
        """Simulate the movz/movn/movk semantics over the emitted sequence."""
        seq = _li_sequence(5, value)
        assert 1 <= len(seq) <= 4
        reg = 0
        for ins in seq:
            if ins.mnemonic == "addi":
                reg = ins.imm & 0xFFFFFFFFFFFFFFFF
            elif ins.mnemonic == "movz":
                reg = ins.imm << (16 * ins.hw)
            elif ins.mnemonic == "movn":
                reg = (~(ins.imm << (16 * ins.hw))) & 0xFFFFFFFFFFFFFFFF
            elif ins.mnemonic == "movk":
                mask = 0xFFFF << (16 * ins.hw)
                reg = (reg & ~mask) | (ins.imm << (16 * ins.hw))
        assert reg == value & 0xFFFFFFFFFFFFFFFF


class TestDisassembler:
    def test_disassembles_back_to_parseable_text(self):
        src = (
            "_start:\n"
            "  addi sp, sp, -32\n"
            "  sd ra, 24(sp)\n"
            "  lr t0, (a0)\n"
            "  sc t1, t2, (a0)\n"
            "  movz a5, 0xFFFF, 3\n"
            "  fadd a0, a1, a2\n"
            "  ecall\n"
        )
        prog = assemble(src)
        for word in text_words(prog):
            line = disassemble_word(word)
            reparsed = assemble(f"_start:\n  {line.replace('-4', '_start')}\n"
                                if "beq" in line else f"_start:\n  {line}\n")
            assert text_words(reparsed)[0] == word

    def test_format_matches_mnemonic(self):
        for m in SPECS:
            prog_src = {
                "lr": "lr t0, (a0)",
            }
            # smoke: every spec can be formatted from a default instance
            from repro.isa import Instruction

            text = format_instruction(Instruction(SPECS[m]))
            assert text.split()[0] == m


class TestBuilder:
    def test_builder_generates_runnable_source(self):
        b = AsmBuilder()
        b.label("_start")
        b.li("a0", 42)
        b.li("a7", 93)
        b.ecall()
        prog = b.assemble()
        assert prog.entry == DEFAULT_TEXT_BASE
        assert decode_text(prog)[-1].mnemonic == "ecall"

    def test_builder_load_store_signature(self):
        b = AsmBuilder()
        b.label("_start")
        b.ld("a0", 8, "sp")
        b.sd("a0", 0, "sp")
        prog = b.assemble()
        ld, sd = decode_text(prog)
        assert (ld.imm, ld.rs1) == (8, 2)
        assert (sd.imm, sd.rs1) == (0, 2)

    def test_builder_atomic_signature(self):
        b = AsmBuilder()
        b.label("_start")
        b.lr("t0", "a0")
        b.sc("t1", "t2", "a0")
        prog = b.assemble()
        lr, sc = decode_text(prog)
        assert lr.mnemonic == "lr"
        assert sc.mnemonic == "sc"

    def test_builder_fp_via_getattr(self):
        b = AsmBuilder()
        b.label("_start")
        b.fcvt_d_l("a0", "a1")
        prog = b.assemble()
        (instr,) = decode_text(prog)
        assert instr.mnemonic == "fcvt.d.l"

    def test_fresh_labels_unique(self):
        b = AsmBuilder()
        labels = {b.fresh_label() for _ in range(100)}
        assert len(labels) == 100

    def test_builder_data_section(self):
        b = AsmBuilder()
        b.label("_start").nop()
        b.data().label("counter").quad(0)
        prog = b.assemble()
        assert prog.symbol("counter") == prog.sections[".data"].base

    def test_builder_prologue_epilogue(self):
        b = AsmBuilder()
        b.label("_start")
        b.prologue()
        b.epilogue()
        prog = b.assemble()
        mns = [i.mnemonic for i in decode_text(prog)]
        assert mns == ["addi", "sd", "sd", "ld", "ld", "addi", "jalr"]

    def test_builder_unknown_mnemonic_raises(self):
        b = AsmBuilder()
        with pytest.raises(AttributeError):
            b.bogus_op("a0")

    def test_builder_syscall_helper(self):
        b = AsmBuilder()
        b.label("_start")
        b.syscall(93)
        prog = b.assemble()
        instrs = decode_text(prog)
        assert instrs[0].imm == 93
        assert instrs[0].rd == 17  # a7
        assert instrs[-1].mnemonic == "ecall"
