"""Encoding/decoding tests for GA64, including property-based round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, InvalidInstruction
from repro.isa import BY_OPCODE, SPECS, Fmt, Instruction, decode, encode
from repro.isa.encoding import IMM14_MAX, IMM14_MIN, IMM19_MAX, IMM19_MIN


def spec_of(m):
    return SPECS[m]


class TestBasicEncoding:
    def test_opcode_table_is_dense_and_unique(self):
        opcodes = [s.opcode for s in SPECS.values()]
        assert len(set(opcodes)) == len(opcodes)
        assert min(opcodes) == 1
        assert max(opcodes) == len(opcodes)

    def test_r_type_fields(self):
        instr = Instruction(spec_of("add"), rd=5, rs1=6, rs2=7)
        word = encode(instr)
        back = decode(word)
        assert back == instr

    def test_i_type_negative_imm(self):
        instr = Instruction(spec_of("addi"), rd=2, rs1=2, imm=-16)
        assert decode(encode(instr)) == instr

    def test_store_uses_rs1_rs2(self):
        instr = Instruction(spec_of("sd"), rs1=2, rs2=10, imm=24)
        assert decode(encode(instr)) == instr

    def test_branch_alignment_enforced(self):
        with pytest.raises(EncodingError, match="4-aligned"):
            encode(Instruction(spec_of("beq"), rs1=1, rs2=2, imm=6))

    def test_jump_alignment_enforced(self):
        with pytest.raises(EncodingError, match="4-aligned"):
            encode(Instruction(spec_of("jal"), rd=1, imm=2))

    def test_movz_fields(self):
        instr = Instruction(spec_of("movz"), rd=9, imm=0xBEEF, hw=2)
        assert decode(encode(instr)) == instr

    def test_movk_hw_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction(spec_of("movk"), rd=1, imm=1, hw=4))

    def test_imm14_bounds(self):
        encode(Instruction(spec_of("addi"), rd=1, rs1=1, imm=IMM14_MAX))
        encode(Instruction(spec_of("addi"), rd=1, rs1=1, imm=IMM14_MIN))
        with pytest.raises(EncodingError):
            encode(Instruction(spec_of("addi"), rd=1, rs1=1, imm=IMM14_MAX + 1))
        with pytest.raises(EncodingError):
            encode(Instruction(spec_of("addi"), rd=1, rs1=1, imm=IMM14_MIN - 1))

    def test_register_bounds(self):
        with pytest.raises(EncodingError):
            encode(Instruction(spec_of("add"), rd=32, rs1=0, rs2=0))

    def test_undefined_opcode_raises_guest_fault(self):
        with pytest.raises(InvalidInstruction):
            decode(0xFF00_0000, pc=0x1000)

    def test_zero_word_is_invalid(self):
        with pytest.raises(InvalidInstruction):
            decode(0)

    def test_sys_format_round_trip(self):
        for m in ("ecall", "ebreak", "fence"):
            instr = Instruction(spec_of(m))
            assert decode(encode(instr)) == instr

    def test_non_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)


# -- property-based round trips -------------------------------------------------

regs = st.integers(0, 31)
imm14 = st.integers(IMM14_MIN, IMM14_MAX)
imm14_aligned = imm14.map(lambda v: v & ~0x3)
imm19_aligned = st.integers(IMM19_MIN, IMM19_MAX).map(lambda v: v & ~0x3)
imm16 = st.integers(0, 0xFFFF)
hw = st.integers(0, 3)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(sorted(SPECS.values(), key=lambda s: s.opcode)))
    if spec.fmt is Fmt.R:
        return Instruction(spec, rd=draw(regs), rs1=draw(regs), rs2=draw(regs))
    if spec.fmt is Fmt.I:
        return Instruction(spec, rd=draw(regs), rs1=draw(regs), imm=draw(imm14))
    if spec.fmt is Fmt.S:
        return Instruction(spec, rs1=draw(regs), rs2=draw(regs), imm=draw(imm14))
    if spec.fmt is Fmt.B:
        return Instruction(spec, rs1=draw(regs), rs2=draw(regs), imm=draw(imm14_aligned))
    if spec.fmt is Fmt.M:
        return Instruction(spec, rd=draw(regs), imm=draw(imm16), hw=draw(hw))
    if spec.fmt is Fmt.J:
        return Instruction(spec, rd=draw(regs), imm=draw(imm19_aligned))
    return Instruction(spec)


@given(instructions())
def test_roundtrip_encode_decode(instr):
    assert decode(encode(instr)) == instr


@given(instructions())
def test_encoded_word_is_32bit(instr):
    word = encode(instr)
    assert 0 <= word <= 0xFFFFFFFF


@given(st.integers(0, 0xFFFFFFFF))
def test_decode_never_crashes_uncontrolled(word):
    """decode() either returns an Instruction or raises InvalidInstruction."""
    try:
        instr = decode(word)
    except InvalidInstruction:
        return
    assert instr.spec.opcode in BY_OPCODE
