"""Kernel-layer tests: VFS, futex table, threads, mm, syscall executor."""

import pytest

from repro.kernel import (
    ERRNO,
    FUTEX_WAIT,
    FUTEX_WAKE,
    FutexTable,
    MemoryManager,
    SYS,
    SyscallExecutor,
    SystemState,
    ThreadState,
    ThreadTable,
    VFS,
)
from repro.kernel.vfs import O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY
from repro.mem import FlatMemory, MMAP_BASE


class DirectKernelMemory:
    """KernelMemory over FlatMemory; generators that never need to yield."""

    def __init__(self, mem: FlatMemory):
        self.mem = mem

    def read_guest(self, addr, size):
        return self.mem.read_bytes(addr, size)
        yield  # pragma: no cover — makes this a generator

    def write_guest(self, addr, data):
        self.mem.write_bytes(addr, data)
        return None
        yield  # pragma: no cover


def drive(gen):
    """Run a kernel generator to completion (no sim events in unit tests)."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("kernel generator yielded unexpectedly in unit test")


@pytest.fixture
def kernel():
    mem = FlatMemory()
    state = SystemState(brk_start=0x20_0000, stdin=b"hello stdin")
    state.threads.create(node=0, parent_tid=0)  # main thread, tid 1
    executor = SyscallExecutor(state, DirectKernelMemory(mem))
    return state, executor, mem


def syscall(executor, sysno, *args, tid=1, node=0):
    return drive(executor.execute(tid, node, sysno, tuple(args)))


class TestVFS:
    def test_stdout_capture(self):
        vfs = VFS()
        assert vfs.write(1, b"hi") == 2
        assert vfs.stdout_text() == "hi"

    def test_stderr_capture(self):
        vfs = VFS()
        vfs.write(2, b"oops")
        assert vfs.stderr_text() == "oops"

    def test_stdin_reads_sequentially(self):
        vfs = VFS(stdin=b"abcdef")
        assert vfs.read(0, 3) == b"abc"
        assert vfs.read(0, 10) == b"def"
        assert vfs.read(0, 10) == b""

    def test_open_missing_without_creat(self):
        vfs = VFS()
        assert vfs.openat("nope.txt", O_RDONLY) == -ERRNO.ENOENT

    def test_create_write_read_roundtrip(self):
        vfs = VFS()
        fd = vfs.openat("f.txt", O_CREAT | O_RDWR)
        assert fd >= 3
        assert vfs.write(fd, b"content") == 7
        vfs.lseek(fd, 0, 0)
        assert vfs.read(fd, 100) == b"content"
        assert vfs.close(fd) == 0
        assert vfs.read(fd, 1) == -ERRNO.EBADF

    def test_trunc_clears(self):
        vfs = VFS()
        vfs.add_file("f", b"old data")
        fd = vfs.openat("f", O_WRONLY | O_TRUNC)
        vfs.write(fd, b"new")
        assert vfs.file_bytes("f") == b"new"

    def test_append_positions_at_end(self):
        vfs = VFS()
        vfs.add_file("f", b"start")
        fd = vfs.openat("f", O_WRONLY | O_APPEND)
        vfs.write(fd, b"+end")
        assert vfs.file_bytes("f") == b"start+end"

    def test_write_to_readonly_fd_rejected(self):
        vfs = VFS()
        vfs.add_file("f", b"x")
        fd = vfs.openat("f", O_RDONLY)
        assert vfs.write(fd, b"y") == -ERRNO.EBADF

    def test_lseek_modes(self):
        vfs = VFS()
        vfs.add_file("f", b"0123456789")
        fd = vfs.openat("f", O_RDONLY)
        assert vfs.lseek(fd, 4, 0) == 4  # SET
        assert vfs.lseek(fd, 2, 1) == 6  # CUR
        assert vfs.lseek(fd, -1, 2) == 9  # END
        assert vfs.lseek(fd, -100, 0) == -ERRNO.EINVAL

    def test_sparse_write_pads_with_zeros(self):
        vfs = VFS()
        fd = vfs.openat("f", O_CREAT | O_RDWR)
        vfs.lseek(fd, 4, 0)
        vfs.write(fd, b"x")
        assert vfs.file_bytes("f") == b"\x00\x00\x00\x00x"


class TestFutexTable:
    def test_fifo_wake_order(self):
        t = FutexTable()
        for tid in (5, 6, 7):
            t.enqueue(0x1000, tid, node=tid % 2)
        woken = t.wake(0x1000, 2)
        assert [w.tid for w in woken] == [5, 6]
        assert [w.tid for w in t.wake(0x1000, 10)] == [7]

    def test_wake_empty_address(self):
        t = FutexTable()
        assert t.wake(0x2000, 1) == []

    def test_waiter_records_node(self):
        t = FutexTable()
        t.enqueue(0x1000, 9, node=3)
        (w,) = t.wake(0x1000, 1)
        assert w.node == 3

    def test_remove_sleeping_thread(self):
        t = FutexTable()
        t.enqueue(0x1000, 1, 0)
        t.enqueue(0x1000, 2, 0)
        assert t.remove(1) is True
        assert [w.tid for w in t.wake(0x1000, 10)] == [2]
        assert t.remove(99) is False

    def test_counters(self):
        t = FutexTable()
        t.enqueue(1, 1, 0)
        t.enqueue(2, 2, 0)
        t.wake(1, 1)
        assert t.total_waits == 2
        assert t.total_wakes == 1
        assert t.n_sleeping == 1


class TestThreadTable:
    def test_tids_sequential_from_one(self):
        t = ThreadTable()
        assert t.create(node=0, parent_tid=0).tid == 1
        assert t.create(node=1, parent_tid=1).tid == 2

    def test_lifecycle(self):
        t = ThreadTable()
        rec = t.create(node=2, parent_tid=0)
        assert rec.state is ThreadState.RUNNING
        t.mark_exited(rec.tid, 7)
        assert t.get(rec.tid).exit_status == 7
        assert t.alive() == []

    def test_on_node(self):
        t = ThreadTable()
        t.create(node=0, parent_tid=0)
        t.create(node=1, parent_tid=1)
        t.create(node=1, parent_tid=1)
        assert len(t.on_node(1)) == 2

    def test_move(self):
        t = ThreadTable()
        rec = t.create(node=0, parent_tid=0)
        t.move(rec.tid, 4)
        assert t.get(rec.tid).node == 4


class TestMemoryManager:
    def test_brk_grow_and_query(self):
        mm = MemoryManager(brk_start=0x20_0000)
        base = mm.brk(0)
        assert base == 0x20_0000
        assert mm.brk(base + 0x5000) == base + 0x5000

    def test_brk_bad_address_returns_current(self):
        mm = MemoryManager(brk_start=0x20_0000)
        cur = mm.brk(0)
        assert mm.brk(0x1000) == cur  # below start: refused

    def test_mmap_page_aligned_and_disjoint(self):
        mm = MemoryManager(brk_start=0x20_0000)
        a = mm.mmap(100)
        b = mm.mmap(5000)
        assert a % 4096 == 0 and b % 4096 == 0
        assert b >= a + 4096
        assert a >= MMAP_BASE

    def test_munmap_validates(self):
        mm = MemoryManager(brk_start=0x20_0000)
        a = mm.mmap(8192)
        assert mm.munmap(a, 8192) == 0
        assert mm.munmap(a, 8192) == -ERRNO.EINVAL

    def test_mmap_invalid_length(self):
        mm = MemoryManager(brk_start=0x20_0000)
        assert mm.mmap(0) == -ERRNO.EINVAL


class TestSyscallExecutor:
    def test_write_reads_guest_buffer(self, kernel):
        state, executor, mem = kernel
        mem.write_bytes(0x5000, b"hello world")
        res = syscall(executor, SYS.WRITE, 1, 0x5000, 11)
        assert res.retval == 11
        assert state.vfs.stdout_text() == "hello world"

    def test_read_writes_guest_buffer(self, kernel):
        state, executor, mem = kernel
        res = syscall(executor, SYS.READ, 0, 0x6000, 5)
        assert res.retval == 5
        assert mem.read_bytes(0x6000, 5) == b"hello"

    def test_openat_reads_path_string(self, kernel):
        state, executor, mem = kernel
        state.vfs.add_file("data.bin", b"\x01\x02")
        mem.write_bytes(0x7000, b"data.bin\x00")
        res = syscall(executor, SYS.OPENAT, 0, 0x7000, O_RDONLY)
        assert res.retval >= 3

    def test_futex_wait_blocks_when_value_matches(self, kernel):
        state, executor, mem = kernel
        mem.store(0x8000, 8, 42)
        res = syscall(executor, SYS.FUTEX, 0x8000, FUTEX_WAIT, 42)
        assert res.action == "blocked"
        assert state.threads.get(1).state is ThreadState.BLOCKED

    def test_futex_wait_eagain_on_mismatch(self, kernel):
        state, executor, mem = kernel
        mem.store(0x8000, 8, 41)
        res = syscall(executor, SYS.FUTEX, 0x8000, FUTEX_WAIT, 42)
        assert res.action == "return"
        assert res.retval == (-ERRNO.EAGAIN) & (2**64 - 1)

    def test_futex_wake_returns_waiters(self, kernel):
        state, executor, mem = kernel
        t2 = state.threads.create(node=1, parent_tid=1)
        mem.store(0x8000, 8, 1)
        syscall(executor, SYS.FUTEX, 0x8000, FUTEX_WAIT, 1, tid=t2.tid, node=1)
        res = syscall(executor, SYS.FUTEX, 0x8000, FUTEX_WAKE, 10)
        assert res.retval == 1
        assert res.woken[0].tid == t2.tid
        assert res.woken[0].node == 1
        assert state.threads.get(t2.tid).state is ThreadState.RUNNING

    def test_clone_returns_request(self, kernel):
        state, executor, mem = kernel
        res = syscall(executor, SYS.CLONE, 0x11, 0x4100_0000, 0, 0, 0x9000)
        assert res.action == "clone"
        assert res.clone.child_stack == 0x4100_0000
        assert res.clone.ctid == 0x9000
        assert res.clone.parent_tid == 1

    def test_exit_clears_ctid_and_wakes_joiner(self, kernel):
        state, executor, mem = kernel
        t2 = state.threads.create(node=1, parent_tid=1, ctid=0xA000)
        mem.store(0xA000, 8, t2.tid)
        # main joins: futex_wait on the ctid word
        syscall(executor, SYS.FUTEX, 0xA000, FUTEX_WAIT, t2.tid, tid=1, node=0)
        res = syscall(executor, SYS.EXIT, 0, tid=t2.tid, node=1)
        assert res.action == "exit"
        assert mem.load(0xA000, 8, False) == 0
        assert [w.tid for w in res.woken] == [1]

    def test_exit_group(self, kernel):
        state, executor, mem = kernel
        res = syscall(executor, SYS.EXIT_GROUP, 3)
        assert res.action == "exit_group"
        assert res.exit_status == 3

    def test_gettid_getpid(self, kernel):
        state, executor, mem = kernel
        assert syscall(executor, SYS.GETTID, tid=1).retval == 1
        assert syscall(executor, SYS.GETPID).retval == 1

    def test_clock_gettime_uses_virtual_clock(self, kernel):
        state, executor, mem = kernel
        state.clock_ns = lambda: 3_000_000_123
        syscall(executor, SYS.CLOCK_GETTIME, 0, 0xB000)
        sec = mem.load(0xB000, 8, False)
        nsec = mem.load(0xB008, 8, False)
        assert (sec, nsec) == (3, 123)

    def test_mmap_munmap_via_syscall(self, kernel):
        state, executor, mem = kernel
        res = syscall(executor, SYS.MMAP, 0, 16384, 3, 0x22, -1, 0)
        addr = res.retval
        assert addr >= MMAP_BASE
        assert syscall(executor, SYS.MUNMAP, addr, 16384).retval == 0

    def test_unknown_syscall_enosys(self, kernel):
        state, executor, mem = kernel
        res = syscall(executor, 9999)
        assert res.retval == (-ERRNO.ENOSYS) & (2**64 - 1)

    def test_sched_yield_action(self, kernel):
        state, executor, mem = kernel
        assert syscall(executor, SYS.SCHED_YIELD).action == "yield"


class TestClassification:
    def test_paper_examples(self):
        from repro.kernel import is_global

        assert is_global(SYS.READ)
        assert is_global(SYS.WRITE)
        assert not is_global(SYS.GETTIMEOFDAY)

    def test_unknown_syscalls_are_global(self):
        from repro.kernel import is_global

        assert is_global(12345)
