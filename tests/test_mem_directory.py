"""Directory/MSI protocol tests, including property-based invariants."""

from hypothesis import given, settings, strategies as st

from repro.mem.directory import Directory


class TestPlans:
    def test_first_read_has_no_actions(self):
        d = Directory()
        plan = d.plan(1, 100, write=False)
        assert plan.fetch_from is None
        assert plan.invalidate == ()
        assert not plan.already_granted

    def test_read_after_read_adds_sharer(self):
        d = Directory()
        d.commit(1, 100, write=False)
        plan = d.plan(2, 100, write=False)
        assert plan.fetch_from is None
        d.commit(2, 100, write=False)
        assert d.sharers(100) == frozenset({1, 2})

    def test_repeat_read_already_granted(self):
        d = Directory()
        d.commit(1, 100, write=False)
        assert d.plan(1, 100, write=False).already_granted

    def test_write_invalidates_other_sharers(self):
        d = Directory()
        d.commit(1, 100, write=False)
        d.commit(2, 100, write=False)
        d.commit(3, 100, write=False)
        plan = d.plan(2, 100, write=True)
        assert set(plan.invalidate) == {1, 3}
        assert plan.fetch_from is None  # sharers hold clean copies
        d.commit(2, 100, write=True)
        assert d.owner(100) == 2
        assert d.sharers(100) == frozenset()

    def test_write_fetches_from_previous_owner(self):
        d = Directory()
        d.commit(1, 100, write=True)
        plan = d.plan(2, 100, write=True)
        assert plan.fetch_from == 1
        assert plan.invalidate == (1,)
        d.commit(2, 100, write=True)
        assert d.owner(100) == 2

    def test_read_downgrades_owner(self):
        d = Directory()
        d.commit(1, 100, write=True)
        plan = d.plan(2, 100, write=False)
        assert plan.fetch_from == 1
        assert plan.downgrade == 1
        d.commit(2, 100, write=False)
        assert d.owner(100) is None
        assert d.sharers(100) == frozenset({1, 2})

    def test_owner_rewrite_is_noop(self):
        d = Directory()
        d.commit(1, 100, write=True)
        assert d.plan(1, 100, write=True).already_granted

    def test_sharer_upgrade_to_owner(self):
        d = Directory()
        d.commit(1, 100, write=False)
        plan = d.plan(1, 100, write=True)
        assert not plan.already_granted
        assert plan.invalidate == ()  # no *other* sharers
        d.commit(1, 100, write=True)
        assert d.owner(100) == 1

    def test_invalidate_all_returns_holders(self):
        d = Directory()
        d.commit(1, 100, write=False)
        d.commit(2, 100, write=False)
        assert d.invalidate_all(100) == (1, 2)
        assert d.holders(100) == ()

    def test_drop_node(self):
        d = Directory()
        d.commit(1, 100, write=True)
        d.drop_node(1, 100)
        assert d.owner(100) is None

    def test_pages_independent(self):
        d = Directory()
        d.commit(1, 100, write=True)
        d.commit(2, 200, write=True)
        assert d.owner(100) == 1
        assert d.owner(200) == 2


# -- property-based: random request streams keep invariants ----------------------

requests = st.lists(
    st.tuples(
        st.integers(0, 5),  # node
        st.integers(0, 3),  # page
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(requests)
def test_invariants_hold_under_any_request_stream(reqs):
    d = Directory()
    for node, page, write in reqs:
        plan = d.plan(node, page, write)
        if not plan.already_granted:
            d.commit(node, page, write)
        d.check_invariants()


@settings(max_examples=200, deadline=None)
@given(requests)
def test_single_writer_multiple_readers(reqs):
    """After any stream: at most one owner; owner excludes sharers."""
    d = Directory()
    for node, page, write in reqs:
        plan = d.plan(node, page, write)
        if not plan.already_granted:
            d.commit(node, page, write)
    for page in range(4):
        ent = d.peek(page)
        if ent.owner is not None:
            assert ent.sharers == set()


@settings(max_examples=200, deadline=None)
@given(requests)
def test_write_plan_invalidates_every_other_holder(reqs):
    d = Directory()
    for node, page, write in reqs:
        plan = d.plan(node, page, write)
        if not plan.already_granted:
            d.commit(node, page, write)
    # Take one more write from node 0 on each page and check the plan covers
    # all holders except the requester.
    for page in range(4):
        holders = set(d.holders(page))
        plan = d.plan(0, page, write=True)
        if plan.already_granted:
            assert holders == {0}
            continue
        covered = set(plan.invalidate)
        assert covered == holders - {0}


@settings(max_examples=100, deadline=None)
@given(requests)
def test_grant_makes_request_satisfied(reqs):
    """Immediately repeating a request after commit is always a no-op."""
    d = Directory()
    for node, page, write in reqs:
        plan = d.plan(node, page, write)
        if not plan.already_granted:
            d.commit(node, page, write)
        assert d.plan(node, page, write).already_granted
