"""Shadow-page translation (page splitting) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.mem.layout import PAGE_SIZE, page_base
from repro.mem.splitmap import SplitCrossing, SplitEntry, SplitMap

ORIG = 0x100
SHADOWS4 = (0x60000, 0x60001, 0x60002, 0x60003)


def make_map(regions=4):
    m = SplitMap()
    shadows = tuple(0x60000 + i for i in range(regions))
    m.install(SplitEntry(ORIG, shadows, PAGE_SIZE // regions))
    return m, shadows


class TestSplitEntry:
    def test_geometry_validated(self):
        with pytest.raises(ProtocolError):
            SplitEntry(ORIG, (1, 2, 3), 1024)  # 3 * 1024 != 4096
        with pytest.raises(ProtocolError):
            SplitEntry(ORIG, (1,), 4096)  # single region is not a split

    def test_region_of(self):
        e = SplitEntry(ORIG, SHADOWS4, 1024)
        assert e.region_of(0) == 0
        assert e.region_of(1023) == 0
        assert e.region_of(1024) == 1
        assert e.region_of(4095) == 3


class TestTranslation:
    def test_non_split_pages_pass_through(self):
        m = SplitMap()
        addr = page_base(ORIG) + 100
        assert m.translate_span(addr, 8) == addr

    def test_same_offset_in_shadow_page(self):
        """Fig. 4: each shadow page keeps the original page offset."""
        m, shadows = make_map()
        for off in (0, 8, 1023, 1024, 2048, 4088):
            addr = page_base(ORIG) + off
            translated = m.translate_span(addr, 8 if off != 1023 else 1)
            region = off // 1024
            assert translated == page_base(shadows[region]) + off

    def test_different_regions_map_to_different_pages(self):
        m, shadows = make_map()
        a = m.translate_span(page_base(ORIG) + 0, 8)
        b = m.translate_span(page_base(ORIG) + 1024, 8)
        assert a // PAGE_SIZE != b // PAGE_SIZE

    def test_crossing_access_raises(self):
        m, _ = make_map()
        with pytest.raises(SplitCrossing):
            m.translate_span(page_base(ORIG) + 1020, 8)

    def test_reverse_lookup(self):
        m, shadows = make_map()
        assert m.shadow_to_orig(shadows[2]) == (ORIG, 2)
        assert m.shadow_to_orig(0x999) is None

    def test_remove_restores_passthrough(self):
        m, _ = make_map()
        entry = m.remove(ORIG)
        assert entry.orig_page == ORIG
        addr = page_base(ORIG) + 2048
        assert m.translate_span(addr, 8) == addr
        assert m.shadow_to_orig(entry.shadow_pages[0]) is None

    def test_remove_unknown_rejected(self):
        m = SplitMap()
        with pytest.raises(ProtocolError):
            m.remove(ORIG)

    def test_double_install_rejected(self):
        m, _ = make_map()
        with pytest.raises(ProtocolError):
            m.install(SplitEntry(ORIG, (0x70000, 0x70001), 2048))

    def test_shadow_reuse_rejected(self):
        m, shadows = make_map()
        with pytest.raises(ProtocolError):
            m.install(SplitEntry(0x200, (shadows[0], 0x70001), 2048))


@settings(max_examples=200, deadline=None)
@given(
    regions=st.sampled_from([2, 4, 8, 16]),
    off=st.integers(0, PAGE_SIZE - 1),
    size=st.sampled_from([1, 2, 4, 8]),
)
def test_translation_preserves_offset_and_partitions(regions, off, size):
    m = SplitMap()
    shadows = tuple(0x60000 + i for i in range(regions))
    region_bytes = PAGE_SIZE // regions
    m.install(SplitEntry(ORIG, shadows, region_bytes))
    addr = page_base(ORIG) + off
    try:
        t = m.translate_span(addr, size)
    except SplitCrossing:
        # only legal when the span really crosses a boundary
        assert off // region_bytes != (off + size - 1) // region_bytes
        return
    assert t % PAGE_SIZE == off  # same page offset
    assert (t // PAGE_SIZE) == shadows[off // region_bytes]
