"""PageStore and FlatMemory unit tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbt import CPUState
from repro.errors import SegmentationFault, UnalignedAccess
from repro.mem import FlatMemory, MSIState, PAGE_SIZE, PageStore
from repro.mem.api import sign_extend


class TestPageStore:
    def test_default_state_invalid(self):
        ps = PageStore()
        assert ps.state(5) is MSIState.INVALID
        assert not ps.has_read(5)
        assert not ps.has_write(5)

    def test_install_and_read(self):
        ps = PageStore()
        data = bytes(range(256)) * 16
        ps.install(3, data, MSIState.SHARED)
        assert ps.has_read(3)
        assert not ps.has_write(3)
        assert ps.read(3 * PAGE_SIZE + 1, 1) == 1

    def test_install_wrong_size_rejected(self):
        ps = PageStore()
        with pytest.raises(ValueError):
            ps.install(1, b"short", MSIState.SHARED)

    def test_modified_grants_write(self):
        ps = PageStore()
        ps.ensure(2, MSIState.MODIFIED)
        assert ps.has_write(2)
        ps.write(2 * PAGE_SIZE, 8, 0xDEAD)
        assert ps.read(2 * PAGE_SIZE, 8) == 0xDEAD

    def test_drop_returns_content(self):
        ps = PageStore()
        ps.ensure(2, MSIState.MODIFIED)
        ps.write(2 * PAGE_SIZE, 4, 77)
        content = ps.drop(2)
        assert content is not None and len(content) == PAGE_SIZE
        assert int.from_bytes(content[:4], "little") == 77
        assert ps.state(2) is MSIState.INVALID
        assert ps.drop(2) is None

    def test_access_without_copy_is_segfault(self):
        ps = PageStore()
        with pytest.raises(SegmentationFault):
            ps.read(0x5000, 8)

    def test_set_state_invalid_clears(self):
        ps = PageStore()
        ps.ensure(1, MSIState.SHARED)
        ps.set_state(1, MSIState.INVALID)
        assert ps.state(1) is MSIState.INVALID
        # data copy still present until dropped (write-back keeps it readable)
        assert 1 in ps

    def test_len_and_pages(self):
        ps = PageStore()
        ps.ensure(1, MSIState.SHARED)
        ps.ensure(9, MSIState.MODIFIED)
        assert len(ps) == 2
        assert sorted(ps.pages()) == [1, 9]


class TestFlatMemory:
    def test_auto_alloc_reads_zero(self):
        mem = FlatMemory()
        assert mem.load(0x123456, 8, False) == 0

    def test_no_auto_alloc_segfaults(self):
        mem = FlatMemory(auto_alloc=False)
        with pytest.raises(SegmentationFault):
            mem.load(0x123456, 8, False)

    def test_cross_page_write_bytes_allowed(self):
        """Bulk (loader) writes may span pages; guest accesses may not."""
        mem = FlatMemory()
        addr = PAGE_SIZE - 2
        mem.write_bytes(addr, b"\x01\x02\x03\x04")
        assert mem.read_bytes(addr, 4) == b"\x01\x02\x03\x04"

    def test_guest_access_cross_page_rejected(self):
        mem = FlatMemory()
        with pytest.raises(UnalignedAccess):
            mem.load(PAGE_SIZE - 2, 4, False)
        with pytest.raises(UnalignedAccess):
            mem.store(PAGE_SIZE - 1, 2, 0)

    def test_sign_extension_helper(self):
        assert sign_extend(0xFF, 1) == 2**64 - 1
        assert sign_extend(0x7F, 1) == 0x7F
        assert sign_extend(0x8000, 2) == 2**64 - 0x8000

    def test_reservation_killed_by_other_thread_store(self):
        mem = FlatMemory()
        cpu1 = CPUState(tid=1)
        cpu2 = CPUState(tid=2)
        mem.store(0x1000, 8, 5)
        mem.load_reserved(cpu1, 0x1000)
        # thread 2 stores into the reserved cell
        mem.store(0x1000, 8, 6)
        assert mem.store_conditional(cpu1, 0x1000, 7) is False
        assert mem.load(0x1000, 8, False) == 6

    def test_reservation_killed_by_overlapping_narrow_store(self):
        mem = FlatMemory()
        cpu = CPUState(tid=1)
        mem.load_reserved(cpu, 0x1000)
        mem.store(0x1004, 1, 9)  # 1-byte store inside the reserved cell
        assert mem.store_conditional(cpu, 0x1000, 7) is False

    def test_two_threads_can_both_reserve(self):
        """LL by two threads: first SC wins, second fails (its reservation
        is killed by the successful store)."""
        mem = FlatMemory()
        cpu1, cpu2 = CPUState(tid=1), CPUState(tid=2)
        mem.load_reserved(cpu1, 0x2000)
        mem.load_reserved(cpu2, 0x2000)
        assert mem.store_conditional(cpu1, 0x2000, 1) is True
        assert mem.store_conditional(cpu2, 0x2000, 2) is False
        assert mem.load(0x2000, 8, False) == 1

    def test_sc_to_different_address_fails(self):
        mem = FlatMemory()
        cpu = CPUState(tid=1)
        mem.load_reserved(cpu, 0x3000)
        assert mem.store_conditional(cpu, 0x3008, 1) is False


@settings(max_examples=100, deadline=None)
@given(
    addr=st.integers(0, 2**32).map(lambda a: a & ~7),
    value=st.integers(0, 2**64 - 1),
    size=st.sampled_from([1, 2, 4, 8]),
)
def test_store_load_roundtrip(addr, value, size):
    mem = FlatMemory()
    mem.store(addr, size, value)
    mask = (1 << (8 * size)) - 1
    assert mem.load(addr, size, False) == value & mask
    expected_signed = sign_extend(value & mask, size) if size < 8 else value & mask
    assert mem.load(addr, size, True) == expected_signed
