"""Live thread migration (sched_setaffinity) and nanosleep tests."""

from repro import Cluster, DQEMUConfig, FaultPlan
from repro.baselines import run_qemu
from repro.kernel.sysnums import SYS
from repro.workloads.common import emit_fanout_main, workload_builder

LONG = dict(max_virtual_ms=600_000)


def migrating_program(target_node: int, iters: int = 200):
    """Worker: count a bit, migrate to `target_node`, count some more,
    record gettid+final count; main prints them."""
    b = workload_builder()

    def post_join(bb):
        bb.la("t0", "out")
        bb.ld("a0", 0, "t0")
        bb.call("rt_print_u64_ln")
        bb.la("t0", "out")
        bb.ld("a0", 8, "t0")
        bb.call("rt_print_u64_ln")

        bb.li("a0", 0)

    emit_fanout_main(b, 1, post_join=post_join)
    b.label("worker")
    b.addi("sp", "sp", -32)
    b.sd("ra", 24, "sp")
    b.sd("s0", 16, "sp")
    b.li("s0", 0)
    b.li("t1", iters)
    b.label(".pre")
    b.addi("s0", "s0", 1)
    b.blt("s0", "t1", ".pre")
    # sched_setaffinity(0, 8, &mask) with mask = 1 << target_node
    b.li("t0", 1 << target_node)
    b.sd("t0", 0, "sp")
    b.li("a0", 0)
    b.li("a1", 8)
    b.mv("a2", "sp")
    b.li("a7", SYS.SCHED_SETAFFINITY)
    b.ecall()
    b.sd("a0", 8, "sp")  # syscall retval
    # keep counting on the new node
    b.li("t1", iters)
    b.label(".post")
    b.addi("s0", "s0", 1)
    b.li("t2", 2)
    b.mul("t1", "t1", "t2")
    b.srli("t1", "t1", 1)  # t1 stays `iters`; exercises post-migration compute
    b.li("t3", 2 * iters)
    b.blt("s0", "t3", ".post")
    b.la("t0", "out")
    b.sd("s0", 0, "t0")
    b.ld("t4", 8, "sp")
    b.sd("t4", 8, "t0")
    b.li("a0", 0)
    b.ld("ra", 24, "sp")
    b.ld("s0", 16, "sp")
    b.addi("sp", "sp", 32)
    b.ret()
    b.data()
    b.align(8)
    b.label("out").quad(0, 0)
    b.text()
    return b.assemble()


class TestMigration:
    def test_thread_moves_and_computation_continues(self):
        prog = migrating_program(target_node=2, iters=200)
        r = Cluster(2, trace=True).run(prog, **LONG)
        lines = r.stdout.splitlines()
        assert int(lines[0]) == 400  # counting survived the move
        assert int(lines[1]) == 0  # setaffinity returned 0
        assert r.stats.protocol.thread_migrations == 1
        moved = [ev for ev in r.trace.filter(category="thread") if "migrated" in ev.what]
        assert any(ev.node == 2 for ev in moved)
        # the worker's stats record its final home
        worker = [t for t in r.stats.threads.values() if t.tid != 1][0]
        assert worker.node == 2

    def test_migrate_to_current_node_is_noop(self):
        prog = migrating_program(target_node=1, iters=50)
        r = Cluster(1).run(prog, **LONG)
        assert r.stdout.splitlines()[0] == "100"
        assert r.stats.protocol.thread_migrations == 0

    def test_migrate_to_unknown_node_einval(self):
        prog = migrating_program(target_node=9, iters=50)
        r = Cluster(1).run(prog, **LONG)
        retval = int(r.stdout.splitlines()[1])
        assert retval == (-22) & (2**64 - 1)  # -EINVAL
        assert r.stats.protocol.thread_migrations == 0

    def test_migrate_to_draining_node_einval(self):
        # A draining node is closed for new work (docs/PROTOCOL.md "Failure
        # domains"): the guest's setaffinity fails with EINVAL instead of
        # stranding the thread on a node that is being evacuated.
        prog = migrating_program(target_node=2, iters=200)
        cfg = DQEMUConfig(
            rpc_timeout_ns=100_000, rpc_max_retries=6,
            rpc_backoff_base_ns=10_000, rpc_backoff_jitter_ns=2_000,
            evacuation_enabled=True, health_aware_placement=True,
            fault_plan=FaultPlan.drain(2, 0),
        ).time_scaled(100.0)
        r = Cluster(2, cfg).run(prog, **LONG)
        lines = r.stdout.splitlines()
        assert int(lines[0]) == 400  # counting continued on the old node
        assert int(lines[1]) == (-22) & (2**64 - 1)  # -EINVAL
        assert r.stats.protocol.thread_migrations == 0
        # The placer also refused the drained node for the worker's spawn.
        assert r.placement_skips.get("n2:draining", 0) >= 1

    def test_pure_qemu_treats_affinity_as_noop(self):
        prog = migrating_program(target_node=0, iters=50)
        r = run_qemu(prog, **LONG)
        assert r.stdout.splitlines()[0] == "100"
        assert int(r.stdout.splitlines()[1]) == 0


class TestNanosleep:
    def test_sleep_advances_virtual_time(self):
        b = workload_builder()
        b.label("main")
        b.addi("sp", "sp", -32)
        b.sd("ra", 24, "sp")
        b.sd("s0", 16, "sp")
        b.call("rt_time_ns")
        b.mv("s0", "a0")
        # nanosleep({2s, 500ns})
        b.li("t0", 2)
        b.sd("t0", 0, "sp")
        b.li("t0", 500)
        b.sd("t0", 8, "sp")
        b.mv("a0", "sp")
        b.li("a1", 0)
        b.li("a7", SYS.NANOSLEEP)
        b.ecall()
        b.call("rt_time_ns")
        b.sub("a0", "a0", "s0")
        b.call("rt_print_u64_ln")
        b.li("a0", 0)
        b.ld("ra", 24, "sp")
        b.ld("s0", 16, "sp")
        b.addi("sp", "sp", 32)
        b.ret()
        r = Cluster(1).run(b.assemble(), max_virtual_ms=10_000)
        elapsed = int(r.stdout)
        assert elapsed >= 2_000_000_500

    def test_sleeping_thread_does_not_hold_a_core(self):
        """A sleeper and a worker on a 1-core node: the worker finishes
        while the sleeper sleeps."""
        b = workload_builder()

        def post_join(bb):
            bb.la("t0", "done")
            bb.ld("a0", 0, "t0")
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        emit_fanout_main(b, 2, post_join=post_join)
        b.label("worker")
        b.addi("sp", "sp", -32)
        b.sd("ra", 24, "sp")
        b.bnez("a0", ".busy")
        # thread 0 sleeps 50ms
        b.sd("zero", 0, "sp")
        b.li("t0", 50_000_000)
        b.sd("t0", 8, "sp")
        b.mv("a0", "sp")
        b.li("a7", SYS.NANOSLEEP)
        b.ecall()
        b.j(".done")
        b.label(".busy")
        b.la("t0", "done")
        b.li("t1", 1)
        b.amoadd("t2", "t1", "t0")
        b.label(".done")
        b.li("a0", 0)
        b.ld("ra", 24, "sp")
        b.addi("sp", "sp", 32)
        b.ret()
        b.data().align(8).label("done").quad(0).text()
        cfg = DQEMUConfig(node_cores={1: 1})
        r = Cluster(1, cfg).run(b.assemble(), **LONG)
        assert r.stdout == "1\n"
        assert r.virtual_ns >= 50_000_000  # the sleep really happened
