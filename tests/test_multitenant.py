"""Multi-tenant job admission: concurrent guests sharing one fleet.

The tentpole contract: a long-lived :class:`Cluster` admits jobs via
``submit``/``join``; concurrent tenants share the nodes but keep fully
isolated address spaces, futex namespaces, thread tables, and stats — so
every job's exit code and stdout are identical to what a solo run of the
same program produces on a fresh cluster.
"""

import pytest

from repro import AdmissionError, Cluster, DQEMUConfig, JobState, assemble
from repro.core.jobs import Job, JobManager
from repro.core.scheduler import FairRunQueue
from repro.errors import ConfigError
from repro.mem.directory import Directory
from repro.mem.sharding import TenantDirectoryView
from repro.sim import Simulator
from repro.workloads import blackscholes, mutex_bench, x264


def tagged_program(tag: str, exit_code: int):
    """A tiny guest printing ``tag`` and exiting with ``exit_code``."""
    return assemble(f"""
_start:
    la a1, msg
    li a0, 1
    li a2, {len(tag) + 1}
    li a7, 64
    ecall
    li a0, {exit_code}
    li a7, 94
    ecall
.data
msg: .asciz "{tag}\\n"
""")


MULTI_CFG = DQEMUConfig(max_concurrent_jobs=3, admission_queue_depth=16)


class TestConcurrentIsolation:
    def test_three_concurrent_jobs_isolated_output(self):
        cluster = Cluster(2, MULTI_CFG)
        jobs = [
            cluster.submit(tagged_program(f"guest{i}", 10 + i), name=f"g{i}")
            for i in range(3)
        ]
        results = cluster.join(jobs)
        for i, res in enumerate(results):
            assert res.exit_code == 10 + i
            assert res.stdout == f"guest{i}\n"
            assert res.tenant == i
            assert res.stats.tenant == i

    def test_mixed_workloads_match_solo_runs(self):
        # The acceptance bar: >= 3 concurrent mixed-workload programs on one
        # fleet, each RunResult matching a solo run of the same program on a
        # fresh cluster.  Computed output (checksums, exit codes) must be
        # bit-identical; mutex_bench prints per-thread *elapsed virtual
        # times*, which legitimately shift under co-tenancy (threads contend
        # for shared cores), so for it we assert the structure and the
        # workload's own invariants instead of raw timing text.
        programs = [
            ("blackscholes", blackscholes.build(n_threads=4, n_options=16)),
            ("mutex", mutex_bench.build(n_threads=4, iters=40)),
            ("x264", x264.build(n_frames=8, group_size=4, pages_per_frame=1)),
        ]
        solo = {
            name: Cluster(2, MULTI_CFG).run(prog, max_virtual_ms=2_000)
            for name, prog in programs
        }
        fleet = Cluster(2, MULTI_CFG)
        jobs = [
            fleet.submit(prog, name=name, max_virtual_ms=2_000)
            for name, prog in programs
        ]
        shared = fleet.join(jobs)
        for (name, _), res in zip(programs, shared):
            assert res.exit_code == solo[name].exit_code, name
            if name == "mutex":
                mine = mutex_bench.parse_elapsed_ns(res.stdout)
                theirs = mutex_bench.parse_elapsed_ns(solo[name].stdout)
                assert len(mine) == len(theirs) == 4
                assert all(t > 0 for t in mine)
            else:
                assert res.stdout == solo[name].stdout, name

    def test_solo_run_on_fleet_matches_fresh_cluster(self):
        # Cluster.run is the one-job compat wrapper: same numbers as ever.
        prog = mutex_bench.build(n_threads=4, iters=40)
        a = Cluster(2).run(prog, max_virtual_ms=2_000)
        b = Cluster(2).run(prog, max_virtual_ms=2_000)
        assert a.exit_code == b.exit_code
        assert a.stdout == b.stdout
        assert a.virtual_ns == b.virtual_ns
        assert a.stats.insns_executed == b.stats.insns_executed

    def test_tenant_fabric_slices_partition_global_traffic(self):
        cluster = Cluster(2, MULTI_CFG)
        jobs = [
            cluster.submit(tagged_program(f"t{i}", 0), name=f"t{i}")
            for i in range(3)
        ]
        results = cluster.join(jobs)
        fleet_total = cluster._fleet.fabric.stats.messages_sent
        assert fleet_total == sum(r.fabric.messages_sent for r in results)
        for res in results:
            assert res.fabric.messages_sent > 0

    def test_per_tenant_directories_are_disjoint_views(self):
        cluster = Cluster(2, MULTI_CFG)
        jobs = [cluster.submit(tagged_program(f"d{i}", 0)) for i in range(2)]
        cluster.join(jobs)
        assert cluster.directories.tenants() == (0, 1)
        assert (cluster.directories.for_tenant(0)
                is not cluster.directories.for_tenant(1))
        cluster.directories.check_invariants()

    def test_queue_wait_is_zero_for_immediately_admitted_jobs(self):
        cluster = Cluster(1, MULTI_CFG)
        res = cluster.run(tagged_program("solo", 0))
        assert res.queue_wait_ns == 0
        assert res.tenant == 0


class TestAdmissionControl:
    def test_queue_depth_overflow_is_refused(self):
        cfg = DQEMUConfig(max_concurrent_jobs=1, admission_queue_depth=1)
        cluster = Cluster(1, cfg)
        cluster.submit(tagged_program("a", 0))
        queued = cluster.submit(tagged_program("b", 0))
        assert queued.state is JobState.QUEUED
        with pytest.raises(AdmissionError, match="admission queue full"):
            cluster.submit(tagged_program("c", 0))
        assert cluster.manager.rejected_total == 1
        # The refused submission left no trace: both accepted jobs complete.
        results = cluster.join()
        assert [r.exit_code for r in results] == [0, 0]

    def test_queued_job_admitted_when_slot_frees_and_waits_are_measured(self):
        cfg = DQEMUConfig(max_concurrent_jobs=1, admission_queue_depth=4)
        cluster = Cluster(1, cfg)
        first = cluster.submit(tagged_program("first", 1))
        second = cluster.submit(tagged_program("second", 2))
        results = cluster.join()
        assert [r.exit_code for r in results] == [1, 2]
        # The second job started at the virtual time the first finished.
        assert second.admitted_ns == first.finished_ns
        assert results[1].queue_wait_ns == second.admitted_ns - second.submitted_ns
        assert results[1].queue_wait_ns > 0
        assert results[0].queue_wait_ns == 0

    def test_single_job_configs_refuse_second_submission(self):
        cluster = Cluster(0, DQEMUConfig(pure_qemu=True))
        cluster.run(tagged_program("once", 0))
        with pytest.raises(ConfigError, match="single-job"):
            cluster.submit(tagged_program("again", 0))

    def test_join_on_empty_cluster_returns_nothing(self):
        assert Cluster(1).join() == []


class TestJobManagerUnit:
    def _manager(self, max_concurrent=2, queue_depth=2):
        admitted = []
        mgr = JobManager(max_concurrent, queue_depth, admitted.append)
        return mgr, admitted

    def _job(self, tenant):
        return Job(tenant=tenant, name=f"j{tenant}", program=None)

    def test_admits_up_to_concurrency_then_queues(self):
        mgr, admitted = self._manager()
        jobs = [self._job(i) for i in range(4)]
        for job in jobs:
            mgr.submit(job)
        assert [j.tenant for j in admitted] == [0, 1]
        assert [j.tenant for j in mgr.queue] == [2, 3]
        assert mgr.admitted_total == 2

    def test_refuses_beyond_queue_depth(self):
        mgr, _ = self._manager(max_concurrent=1, queue_depth=1)
        mgr.submit(self._job(0))
        mgr.submit(self._job(1))
        with pytest.raises(AdmissionError):
            mgr.submit(self._job(2))
        assert mgr.rejected_total == 1

    def test_job_done_admits_fifo(self):
        mgr, admitted = self._manager(max_concurrent=1, queue_depth=3)
        jobs = [self._job(i) for i in range(3)]
        for job in jobs:
            mgr.submit(job)
        mgr.job_done(jobs[0])
        assert [j.tenant for j in admitted] == [0, 1]
        mgr.job_done(jobs[1])
        assert [j.tenant for j in admitted] == [0, 1, 2]
        assert not mgr.queue


class _FakeThread:
    def __init__(self, tenant, tag):
        self.tenant = tenant
        self.tag = tag

    def __repr__(self):
        return self.tag


class TestFairRunQueue:
    def _drain(self, q, n):
        out = []
        for _ in range(n):
            ev = q.get()
            assert ev.triggered
            out.append(ev.value)
        return out

    def test_single_tenant_is_fifo(self):
        q = FairRunQueue(Simulator())
        items = [_FakeThread(0, f"a{i}") for i in range(4)]
        for it in items:
            q.put(it)
        assert self._drain(q, 4) == items

    def test_two_tenants_round_robin(self):
        q = FairRunQueue(Simulator())
        a = [_FakeThread(0, f"a{i}") for i in range(3)]
        b = [_FakeThread(1, f"b{i}") for i in range(2)]
        for it in a + b:  # tenant 0 floods the queue first
            q.put(it)
        picks = self._drain(q, 5)
        assert picks == [a[0], b[0], a[1], b[1], a[2]]

    def test_sentinel_at_head_pops_plain_fifo(self):
        q = FairRunQueue(Simulator())
        q.put(None)
        q.put(_FakeThread(0, "a0"))
        assert self._drain(q, 1) == [None]

    def test_put_to_waiting_getter_bypasses_arbitration(self):
        q = FairRunQueue(Simulator())
        ev = q.get()
        assert not ev.triggered
        th = _FakeThread(3, "x")
        q.put(th)
        assert ev.triggered and ev.value is th
        assert len(q) == 0


class TestTenantDirectoryView:
    def test_routes_and_rejects(self):
        view = TenantDirectoryView()
        d0, d1 = Directory(), Directory()
        view.add_tenant(0, [d0])
        view.add_tenant(1, [d1])
        with pytest.raises(ConfigError, match="already registered"):
            view.add_tenant(0, [d0])
        with pytest.raises(ConfigError, match="unknown tenant"):
            view.for_tenant(9)
        assert view.tenants() == (0, 1)
        assert view.for_tenant(1).shards == [d1]
        view.check_invariants()
