"""Tests for the simulated interconnect: timing model, RPC, routing."""

import pytest

from repro.errors import NetworkError
from repro.net import Endpoint, Fabric
from repro.net.messages import (
    HEADER_BYTES,
    PageData,
    PageRequest,
    SyscallReply,
    SyscallRequest,
)
from repro.sim import Simulator


def make_cluster(n=3, **kw):
    sim = Simulator()
    fabric = Fabric(sim, **kw)
    eps = [Endpoint(sim, fabric, i) for i in range(n)]
    return sim, fabric, eps


class TestTiming:
    def test_small_message_rtt_matches_paper(self):
        """64-byte control frames should see ~55 us round trips (paper §6.1)."""
        sim, fabric, (master, slave, _) = make_cluster()
        result = {}

        def slave_proc():
            reply = yield slave.request(0, PageRequest(page=1))
            result["rtt"] = sim.now
            assert isinstance(reply, SyscallReply)

        def master_proc():
            q = master.subscribe("page_request")
            msg = yield q.get()
            master.reply(msg, SyscallReply(retval=0))

        sim.spawn(master_proc())
        sim.spawn(slave_proc())
        sim.run()
        rtt_us = result["rtt"] / 1000
        assert 54 <= rtt_us <= 60

    def test_page_transfer_adds_serialization(self):
        sim, fabric, (a, b, _) = make_cluster()
        arrivals = {}

        def receiver():
            q = b.subscribe("page_data")
            yield q.get()
            arrivals["t"] = sim.now

        sim.spawn(receiver())
        a.send(1, PageData(page=0, data=bytes(4096)))
        sim.run()
        # one-way latency 27.4us + 2x serialization of ~4160B at 1Gb/s (~33.3us each)
        expected = 27_400 + 2 * fabric.serialization_ns(4096 + HEADER_BYTES)
        assert arrivals["t"] == expected

    def test_uplink_serialization_queues_back_to_back_sends(self):
        sim, fabric, (a, b, _) = make_cluster()
        arrivals = []

        def receiver():
            q = b.subscribe("page_data")
            for _ in range(2):
                yield q.get()
                arrivals.append(sim.now)

        sim.spawn(receiver())
        a.send(1, PageData(page=0, data=bytes(4096)))
        a.send(1, PageData(page=1, data=bytes(4096)))
        sim.run()
        ser = fabric.serialization_ns(4096 + HEADER_BYTES)
        assert arrivals[1] - arrivals[0] == ser

    def test_downlink_contention_from_two_senders(self):
        sim, fabric, eps = make_cluster(4)
        arrivals = []

        def receiver():
            q = eps[0].subscribe("page_data")
            for _ in range(2):
                yield q.get()
                arrivals.append(sim.now)

        sim.spawn(receiver())
        eps[1].send(0, PageData(page=0, data=bytes(4096)))
        eps[2].send(0, PageData(page=1, data=bytes(4096)))
        sim.run()
        ser = fabric.serialization_ns(4096 + HEADER_BYTES)
        # Both arrive at the switch simultaneously; the second is serialized
        # behind the first on node 0's downlink.
        assert arrivals[1] - arrivals[0] == ser

    def test_loopback_is_fast_and_skips_links(self):
        sim, fabric, eps = make_cluster()
        arrivals = {}

        def receiver():
            q = eps[0].subscribe("page_data")
            yield q.get()
            arrivals["t"] = sim.now

        sim.spawn(receiver())
        eps[0].send(0, PageData(page=0, data=bytes(4096)))
        sim.run()
        assert arrivals["t"] == fabric.loopback_latency_ns

    def test_bandwidth_validation(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            Fabric(sim, bandwidth_bps=0)
        with pytest.raises(NetworkError):
            Fabric(sim, one_way_latency_ns=-5)


class TestEndpoint:
    def test_request_reply_correlation(self):
        sim, fabric, (m, s1, s2) = make_cluster()
        results = {}

        def slave(ep, tag, page):
            reply = yield ep.request(0, PageRequest(page=page))
            results[tag] = reply.page

        def master():
            q = m.subscribe("page_request")
            for _ in range(2):
                msg = yield q.get()
                m.reply(msg, PageData(page=msg.page, data=b""))

        sim.spawn(master())
        sim.spawn(slave(s1, "s1", 7))
        sim.spawn(slave(s2, "s2", 9))
        sim.run()
        assert results == {"s1": 7, "s2": 9}

    def test_unknown_reply_raises(self):
        sim, fabric, (a, b, _) = make_cluster()
        b.send(0, PageData(page=1, in_reply_to=999, data=b""))
        with pytest.raises(NetworkError, match="unknown request"):
            sim.run()

    def test_unrouted_message_raises(self):
        sim, fabric, (a, b, _) = make_cluster()
        a.send(1, PageRequest(page=1))
        with pytest.raises(NetworkError, match="no subscriber"):
            sim.run()

    def test_default_queue_catches_unrouted(self):
        sim, fabric, (a, b, _) = make_cluster()
        got = []

        def receiver():
            q = b.subscribe_default()
            got.append((yield q.get()))

        sim.spawn(receiver())
        a.send(1, PageRequest(page=3))
        sim.run()
        assert got[0].page == 3

    def test_custom_router_by_source(self):
        """The master routes each slave's traffic to its own manager queue."""
        sim, fabric, (m, s1, s2) = make_cluster()
        m.set_router(lambda msg: ("mgr", msg.src))
        seen = {1: [], 2: []}

        def manager(slave_id):
            q = m.subscribe(("mgr", slave_id))
            msg = yield q.get()
            seen[slave_id].append(msg.page)

        sim.spawn(manager(1))
        sim.spawn(manager(2))
        s1.send(0, PageRequest(page=11))
        s2.send(0, PageRequest(page=22))
        sim.run()
        assert seen == {1: [11], 2: [22]}

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim)
        Endpoint(sim, fabric, 0)
        with pytest.raises(NetworkError):
            Endpoint(sim, fabric, 0)


class TestMessages:
    def test_sizes_include_header(self):
        assert PageRequest(page=1).size_bytes() == HEADER_BYTES
        pd = PageData(page=1, data=bytes(4096))
        assert pd.size_bytes() == HEADER_BYTES + 4096

    def test_req_ids_stamped_at_transmit_are_unique(self):
        # Ids come from the fabric's per-cluster sequence, assigned on first
        # transmit — construction alone leaves the frame unstamped.
        sim, fabric, (a, b, _) = make_cluster()
        b.subscribe_default()
        msgs = [PageRequest(page=i) for i in range(100)]
        assert all(m.req_id == 0 for m in msgs)
        for m in msgs:
            a.send(1, m)
        assert len({m.req_id for m in msgs}) == 100

    def test_req_id_sequences_are_per_fabric(self):
        # Two clusters in one process no longer interleave id streams.
        _, _, (a1, b1, _) = make_cluster()
        _, _, (a2, b2, _) = make_cluster()
        b1.subscribe_default()
        b2.subscribe_default()
        m1, m2 = PageRequest(page=1), PageRequest(page=1)
        a1.send(1, m1)
        a2.send(1, m2)
        assert m1.req_id == m2.req_id == 1

    def test_syscall_request_payload_scales_with_args(self):
        small = SyscallRequest(sysno=1, args=(1,))
        big = SyscallRequest(sysno=1, args=(1, 2, 3, 4, 5, 6))
        assert big.payload_bytes() > small.payload_bytes()

    def test_fabric_stats_accumulate(self):
        sim, fabric, (a, b, _) = make_cluster()
        b.subscribe_default()
        a.send(1, PageRequest(page=1))
        a.send(1, PageData(page=1, data=bytes(100)))
        sim.run()
        assert fabric.stats.messages_sent == 2
        assert fabric.stats.by_kind["page_request"] == 1
        assert fabric.stats.bytes_by_kind["page_data"] == HEADER_BYTES + 100

    def test_fabric_stats_per_node_tx_rx_bytes(self):
        sim, fabric, (a, b, c) = make_cluster()
        a.subscribe_default()
        b.subscribe_default()
        b.send(0, PageRequest(page=1))
        c.send(0, PageData(page=1, data=bytes(100)))
        c.send(1, PageRequest(page=2))
        sim.run()
        st = fabric.stats
        assert st.tx_bytes_by_node[1] == HEADER_BYTES
        assert st.tx_bytes_by_node[2] == 2 * HEADER_BYTES + 100
        # Node 0 is the hot receiver (the master-link picture).
        assert st.rx_bytes_by_node[0] == 2 * HEADER_BYTES + 100
        assert st.rx_bytes_by_node[1] == HEADER_BYTES
        assert st.tx_bytes_by_node[0] == 0  # Counter: absent keys read as 0

    def test_public_deliver_routes_like_the_fabric(self):
        """Endpoint.deliver is the fabric's (and RPC layer's) entry point."""
        sim, fabric, (a, b, _) = make_cluster()
        q = b.subscribe("page_request")
        b.deliver(PageRequest(page=9, src=0, dst=1))
        got = []

        def receiver():
            got.append((yield q.get()))

        sim.spawn(receiver())
        sim.run()
        assert got[0].page == 9
