"""End-to-end tests for the paper's §5 optimizations.

Page splitting (§5.1), data forwarding (§5.2) and the split-merge
correctness escape hatch are exercised with the access patterns that the
paper's Table 1 uses, on small scaled-down sizes.
"""

from repro import Cluster, DQEMUConfig
from repro.workloads.common import emit_fanout_main, workload_builder

# Test-scale knobs: lighter protocol costs so ping-pong cycles are short and
# detector triggers fire within small iteration counts.
FAST = dict(dsm_service_ns=30_000, splitting_trigger=6)


def seq_reader_program(npages=40):
    """One worker walks `npages` pages with sequential 8-byte loads."""
    b = workload_builder()
    emit_fanout_main(b, 1)
    b.label("worker")
    b.la("t0", "arr")
    b.li("t1", 0)
    b.li("t2", npages * 4096 // 8)
    b.label(".r_loop")
    b.slli("t3", "t1", 3)
    b.add("t3", "t3", "t0")
    b.ld("t4", 0, "t3")
    b.addi("t1", "t1", 1)
    b.blt("t1", "t2", ".r_loop")
    b.li("a0", 0)
    b.ret()
    b.bss()
    b.align(4096)
    b.label("arr")
    b.space(npages * 4096)
    b.text()
    return b.assemble()


def false_sharing_program(iters=60_000, n_threads=2, section=2048, post_join=None):
    """Each worker read-modify-writes its own 128-byte slice of ONE page,
    slices `section` bytes apart — the Table 1 false-sharing pattern."""
    b = workload_builder()
    emit_fanout_main(b, n_threads, post_join=post_join)
    b.label("worker")
    b.li("t0", section)
    b.mul("t0", "a0", "t0")
    b.la("t1", "arr")
    b.add("t1", "t1", "t0")
    b.li("t2", 0)
    b.li("t6", iters)
    b.label(".fs_loop")
    b.andi("t3", "t2", 127)
    b.add("t4", "t1", "t3")
    b.lbu("t5", 0, "t4")
    b.addi("t5", "t5", 1)
    b.sb("t5", 0, "t4")
    b.addi("t2", "t2", 1)
    b.blt("t2", "t6", ".fs_loop")
    b.li("a0", 0)
    b.ret()
    b.bss()
    b.align(4096)
    b.label("arr")
    b.space(4096)
    b.text()
    return b.assemble()


class TestForwarding:
    def test_sequential_stream_gets_pushed(self):
        prog = seq_reader_program()
        r = Cluster(1, DQEMUConfig(forwarding_enabled=True)).run(
            prog, max_virtual_ms=60_000
        )
        assert r.stats.protocol.pages_forwarded > 20

    def test_forwarding_reduces_fault_latency_and_time(self):
        from repro.analysis.metrics import mean_fault_latency_us

        prog = seq_reader_program()
        base = Cluster(1, DQEMUConfig()).run(prog, max_virtual_ms=60_000)
        fwd = Cluster(1, DQEMUConfig(forwarding_enabled=True)).run(
            prog, max_virtual_ms=60_000
        )
        # A demand fault is satisfied by the in-flight push (§5.2), so the
        # request count barely changes but the wait per fault collapses.
        assert mean_fault_latency_us(fwd) < mean_fault_latency_us(base) / 2
        assert fwd.virtual_ns < base.virtual_ns / 1.25

    def test_forwarded_pages_arrive_shared_and_correct(self):
        """Push a data pattern and make the reader checksum it."""
        b = workload_builder()

        def post(bb):
            bb.la("a0", "total")
            bb.ld("a0", 0, "a0")
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        emit_fanout_main(b, 1, post_join=post)
        b.label("worker")
        b.la("t0", "arr")
        b.li("t1", 0)
        b.li("t2", 10 * 512)  # 10 pages of qwords
        b.li("t5", 0)
        b.label(".r_loop")
        b.slli("t3", "t1", 3)
        b.add("t3", "t3", "t0")
        b.ld("t4", 0, "t3")
        b.add("t5", "t5", "t4")
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", ".r_loop")
        b.la("t0", "total")
        b.sd("t5", 0, "t0")
        b.li("a0", 0)
        b.ret()
        b.data()
        b.align(4096)
        b.label("arr")
        for page in range(10):
            b.quad(page + 1)
            b.space(4088)
        b.align(8)
        b.label("total")
        b.quad(0)
        b.text()
        prog = b.assemble()
        r = Cluster(1, DQEMUConfig(forwarding_enabled=True)).run(
            prog, max_virtual_ms=60_000
        )
        assert r.stdout == f"{sum(range(1, 11))}\n"


class TestSplitting:
    def test_false_sharing_triggers_split(self):
        prog = false_sharing_program()
        cfg = DQEMUConfig(splitting_enabled=True, **FAST)
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stats.protocol.splits == 1
        assert r.stats.protocol.split_retry_replies >= 1

    def test_split_disabled_never_splits(self):
        prog = false_sharing_program()
        cfg = DQEMUConfig(splitting_enabled=False, **FAST)
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stats.protocol.splits == 0

    def test_split_improves_time_and_traffic(self):
        prog = false_sharing_program()
        base = Cluster(2, DQEMUConfig(**FAST)).run(prog, max_virtual_ms=600_000)
        split = Cluster(2, DQEMUConfig(splitting_enabled=True, **FAST)).run(
            prog, max_virtual_ms=600_000
        )
        assert split.virtual_ns < base.virtual_ns / 1.5
        assert split.stats.protocol.page_requests < base.stats.protocol.page_requests

    def test_split_preserves_data(self):
        """After the run, the main thread re-reads both slices through the
        split table and prints their byte sums — must equal the work done."""
        iters = 60_000

        def post(bb):
            # sum bytes 0..127 and 2048..2175 of arr
            bb.la("t0", "arr")
            bb.li("t1", 0)  # acc
            for base_off in (0, 2048):
                bb.li("t2", 0)
                lbl = f".chk_{base_off}"
                bb.label(lbl)
                bb.addi("t3", "t2", base_off)
                bb.la("t0", "arr")
                bb.add("t3", "t3", "t0")
                bb.lbu("t4", 0, "t3")
                bb.add("t1", "t1", "t4")
                bb.addi("t2", "t2", 1)
                bb.li("t5", 128)
                bb.blt("t2", "t5", lbl)
            bb.mv("a0", "t1")
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        prog = false_sharing_program(iters=iters, post_join=post)
        cfg = DQEMUConfig(splitting_enabled=True, **FAST)
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stats.protocol.splits == 1
        expected = 2 * sum(((iters - j + 127) // 128) % 256 for j in range(128))
        assert r.stdout == f"{expected}\n"

    def test_four_node_section_split(self):
        prog = false_sharing_program(iters=40_000, n_threads=4, section=1024)
        cfg = DQEMUConfig(splitting_enabled=True, **FAST)
        r = Cluster(4, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stats.protocol.splits == 1


class TestMerge:
    def test_region_crossing_access_merges_back(self):
        iters = 60_000

        def post(bb):
            bb.la("t0", "arr")
            bb.ld("a0", 2044, "t0")  # straddles the 2048-byte region boundary
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        prog = false_sharing_program(iters=iters, post_join=post)
        cfg = DQEMUConfig(splitting_enabled=True, **FAST)
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stats.protocol.splits == 1
        assert r.stats.protocol.merges == 1
        # Exact value across the merged boundary: low half untouched zeros,
        # high half = worker 1's per-byte counters.
        val = 0
        for k, off in enumerate(range(2044, 2052)):
            byte = 0 if off < 2048 else ((iters - (off - 2048) + 127) // 128) % 256
            val |= byte << (8 * k)
        assert r.stdout == f"{val}\n"

    def test_merged_page_continues_working(self):
        """After a merge, further writes to the page still behave."""
        iters = 60_000

        def post(bb):
            bb.la("t0", "arr")
            bb.ld("t1", 2044, "t0")  # force merge
            bb.li("t2", 0x55)
            bb.sb("t2", 2044, "t0")  # then write through the merged page
            bb.lbu("a0", 2044, "t0")
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        prog = false_sharing_program(iters=iters, post_join=post)
        cfg = DQEMUConfig(splitting_enabled=True, **FAST)
        r = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert r.stats.protocol.merges == 1
        assert r.stdout == f"{0x55}\n"
