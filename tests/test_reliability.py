"""Reliable delivery: retry policy, retransmission, reply replay, health.

Unit coverage for the RPC reliability layer (docs/PROTOCOL.md "Reliable
delivery") plus the tombstone-sweep boundary cases it leans on: backoff
determinism, timer cancellation on completion and re-arm, retransmission
recovering dropped requests *and* dropped replies (server reply cache),
budget exhaustion escalating to :class:`RpcTimeout`, per-peer health state
transitions, and end-to-end cluster runs that ride out a network partition.
"""

import pytest

from repro import Cluster, DQEMUConfig, FaultPlan, ServiceTimeout
from repro.errors import ConfigError
from repro.net import Endpoint, Fabric
from repro.net.faults import FaultInjector, drop
from repro.net.health import HealthTracker, PeerState
from repro.net.messages import PageRequest, SyscallReply
from repro.net.rpc import RetryPolicy, RpcTimeout
from repro.sim import Simulator
from repro.workloads import blackscholes

RETRY = RetryPolicy(max_retries=3, backoff_base_ns=10_000)


def make_cluster(n=2, plan=None, health=False):
    # Latency far below the tests' 5 us timeout windows, so a retransmit can
    # only ever come from an injected fault, never from wire delay.
    sim = Simulator()
    fabric = Fabric(sim, one_way_latency_ns=100, loopback_latency_ns=10)
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, plan).attach(fabric)
    if health:
        fabric.health = HealthTracker(sim)
    eps = [Endpoint(sim, fabric, i) for i in range(n)]
    return sim, fabric, injector, eps


def echo_server(ep, kind="page_request", retval=7):
    q = ep.subscribe(kind)
    while True:
        msg = yield q.get()
        ep.reply(msg, SyscallReply(retval=retval))


# -- policy -------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError, match="non-negative"):
            RetryPolicy(max_retries=1, backoff_base_ns=-1)

    def test_backoff_doubles_per_attempt(self):
        p = RetryPolicy(max_retries=5, backoff_base_ns=1000)
        assert [p.backoff_ns(k, req_id=9) for k in range(4)] == [
            1000, 2000, 4000, 8000,
        ]

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(max_retries=5, backoff_base_ns=1000, backoff_jitter_ns=500)
        twin = RetryPolicy(max_retries=5, backoff_base_ns=1000, backoff_jitter_ns=500)
        for attempt in range(4):
            for req_id in (1, 2, 77):
                d = p.backoff_ns(attempt, req_id)
                assert d == twin.backoff_ns(attempt, req_id)  # pure function
                assert 1000 << attempt <= d <= (1000 << attempt) + 500

    def test_jitter_varies_with_request_id(self):
        p = RetryPolicy(max_retries=5, backoff_base_ns=1000, backoff_jitter_ns=499)
        spreads = {p.backoff_ns(0, req_id) for req_id in range(32)}
        assert len(spreads) > 1  # the hash actually spreads

    def test_retry_without_timeout_rejected(self):
        sim, _fabric, _inj, eps = make_cluster()
        with pytest.raises(ConfigError, match="needs timeout_ns"):
            eps[0].request(1, PageRequest(page=1), retry=RETRY)

    def test_config_retry_policy_construction(self):
        assert DQEMUConfig().retry_policy() is None
        cfg = DQEMUConfig(
            rpc_timeout_ns=5_000, rpc_max_retries=2,
            rpc_backoff_base_ns=1_000, rpc_backoff_jitter_ns=100,
        )
        policy = cfg.retry_policy()
        assert policy == RetryPolicy(
            max_retries=2, backoff_base_ns=1_000, backoff_jitter_ns=100
        )
        with pytest.raises(ConfigError, match="needs rpc_timeout_ns"):
            DQEMUConfig(rpc_max_retries=1)


# -- retransmission ------------------------------------------------------------


class TestRetransmission:
    def test_dropped_request_is_retransmitted_and_recovers(self):
        plan = FaultPlan.of(drop(kinds={"page_request"}, max_count=1))
        sim, _fabric, inj, eps = make_cluster(plan=plan, health=True)
        a, b = eps
        sim.spawn(echo_server(b))
        replies = []

        def caller():
            reply = yield a.request(
                1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY
            )
            replies.append(reply)

        sim.spawn(caller())
        sim.run()
        assert [r.retval for r in replies] == [7]
        assert inj.stats.dropped == 1
        assert a.rpc.retransmits == 1
        assert a.rpc.recoveries == 1
        # Recovery latency spans first send -> reply: at least the timeout
        # window plus the first backoff.
        assert a.rpc.recovery_wait_ns >= 5_000 + 10_000

    def test_dropped_reply_is_recovered_by_retransmit(self):
        plan = FaultPlan.of(drop(kinds={"syscall_reply"}, max_count=1))
        sim, _fabric, inj, eps = make_cluster(plan=plan)
        a, b = eps
        sim.spawn(echo_server(b))
        replies = []

        def caller():
            reply = yield a.request(
                1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY
            )
            replies.append(reply)

        sim.spawn(caller())
        sim.run()
        assert [r.retval for r in replies] == [7]
        assert inj.stats.dropped == 1
        assert a.rpc.retransmits == 1 and a.rpc.recoveries == 1

    def test_budget_exhaustion_escalates_with_retry_count(self):
        plan = FaultPlan.of(drop(kinds={"page_request"}))  # nothing gets through
        sim, _fabric, _inj, eps = make_cluster(plan=plan, health=True)
        a, b = eps
        sim.spawn(echo_server(b))
        failures = []

        def caller():
            try:
                yield a.request(1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY)
            except RpcTimeout as exc:
                failures.append(exc)

        sim.spawn(caller())
        sim.run()
        assert len(failures) == 1
        assert failures[0].retries == RETRY.max_retries
        assert "after 3 retransmits" in str(failures[0])
        assert a.rpc.retransmits == 3
        assert a.rpc.exhausted == 1 and a.rpc.recoveries == 0
        assert a.rpc._timers == {}  # no timer leaked past the failure

    def test_completion_cancels_timer(self):
        sim, _fabric, _inj, eps = make_cluster()
        a, b = eps
        sim.spawn(echo_server(b))
        replies = []

        def caller():
            reply = yield a.request(
                1, PageRequest(page=1), timeout_ns=1_000_000, retry=RETRY
            )
            replies.append(reply)

        sim.spawn(caller())
        sim.run()
        assert len(replies) == 1
        assert a.rpc._timers == {}
        assert a.rpc.retransmits == 0
        # The cancelled timeout still advances the clock to its expiry (the
        # heap entry stays), but fires no retransmission.
        assert sim.now >= 1_000_000

    def test_stats_sink_receives_attributed_counts(self):
        from repro.core.stats import ServiceStats

        sink = ServiceStats(name="svc")
        plan = FaultPlan.of(drop(kinds={"page_request"}, max_count=2))
        sim, _fabric, _inj, eps = make_cluster(plan=plan)
        a, b = eps
        sim.spawn(echo_server(b))

        def caller():
            yield a.request(
                1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY, stats=sink
            )

        sim.spawn(caller())
        sim.run()
        assert sink.retransmits == 2
        assert sink.recoveries == 1
        assert sink.recovery_wait_ns > 0


# -- server-side reply cache ---------------------------------------------------


class TestReplyCache:
    def _served_pair(self):
        sim, _fabric, _inj, eps = make_cluster()
        a, b = eps
        b.rpc.enable_reply_cache()
        req = PageRequest(page=1)
        req.req_id, req.src, req.dst = 11, 0, 1
        b.rpc.reply(req, SyscallReply(retval=5))
        return sim, a, b, req

    def test_replay_resends_cached_clone(self):
        sim, _a, b, req = self._served_pair()
        assert b.rpc.cached_replies == 1
        assert b.rpc.resend_reply(req) is True
        assert b.rpc.reply_replays == 1

    def test_disabled_cache_replays_nothing(self):
        sim, _fabric, _inj, eps = make_cluster()
        b = eps[1]
        req = PageRequest(page=1)
        req.req_id, req.src, req.dst = 11, 0, 1
        b.rpc.reply(req, SyscallReply(retval=5))
        assert b.rpc.cached_replies == 0
        assert b.rpc.resend_reply(req) is False

    def test_cache_is_fifo_bounded(self):
        sim, _a, b, _req = self._served_pair()
        for i in range(b.rpc.REPLY_CACHE_LIMIT + 50):
            req = PageRequest(page=1)
            req.req_id, req.src, req.dst = 100 + i, 0, 1
            b.rpc.reply(req, SyscallReply(retval=0))
        assert b.rpc.cached_replies == b.rpc.REPLY_CACHE_LIMIT


# -- tombstone sweep boundaries ------------------------------------------------


class TestTombstoneBoundaries:
    def test_entry_exactly_at_horizon_survives(self):
        sim, _fabric, _inj, eps = make_cluster()
        ch = eps[0].rpc
        ch._remember(1, "expired")  # stamped t=0
        # At t == TTL the horizon is exactly 0: the entry is not yet stale.
        sim.timeout(ch.TOMBSTONE_TTL_NS).add_callback(
            lambda _e: ch._remember(2, "completed")
        )
        sim.run()
        assert ch.tombstones == 2

    def test_entry_one_ns_past_horizon_is_swept(self):
        sim, _fabric, _inj, eps = make_cluster()
        ch = eps[0].rpc
        ch._remember(1, "expired")
        sim.timeout(ch.TOMBSTONE_TTL_NS + 1).add_callback(
            lambda _e: ch._remember(2, "completed")
        )
        sim.run()
        assert ch.tombstones == 1
        assert 2 in ch._tombstones and 1 not in ch._tombstones

    def test_cap_evicts_oldest_first_across_mixed_kinds(self):
        sim, _fabric, _inj, eps = make_cluster()
        ch = eps[0].rpc
        overflow = 10
        for req_id in range(ch.TOMBSTONE_LIMIT + overflow):
            ch._remember(req_id, "expired" if req_id % 2 else "completed")
        assert ch.tombstones == ch.TOMBSTONE_LIMIT
        # Insertion order governs eviction, not the expired/completed kind:
        # exactly the oldest `overflow` ids are gone.
        assert all(req_id not in ch._tombstones for req_id in range(overflow))
        assert overflow in ch._tombstones
        assert (ch.TOMBSTONE_LIMIT + overflow - 1) in ch._tombstones

    def test_late_first_reply_after_retransmit_is_deduped(self):
        sim, _fabric, _inj, eps = make_cluster()
        a, b = eps
        replies = []

        def slow_then_fast_server():
            q = b.subscribe("page_request")
            first = yield q.get()
            # Past the client's timeout + first backoff (5 + 10 us) but
            # inside the re-armed window: exactly one retransmit goes out
            # before the late first reply lands.
            yield sim.timeout(18_000)
            b.reply(first, SyscallReply(retval=1))  # the *late* first reply
            second = yield q.get()  # the retransmitted clone
            b.reply(second, SyscallReply(retval=2))

        def caller():
            reply = yield a.request(
                1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY
            )
            replies.append(reply)

        sim.spawn(slow_then_fast_server())
        sim.spawn(caller())
        sim.run()
        # Delivered exactly once (the late first reply wins the race); the
        # second server reply hits a completed tombstone, not the caller.
        assert [r.retval for r in replies] == [1]
        assert a.rpc.duplicate_replies == 1
        assert a.rpc.retransmits == 1 and a.rpc.recoveries == 1


# -- peer health ---------------------------------------------------------------


class TestPeerHealth:
    def test_state_transitions(self):
        sim = Simulator()
        h = HealthTracker(sim)
        assert h.state_of(2) is PeerState.UP
        h.retransmitted(2)
        assert h.state_of(2) is PeerState.UP  # one failure: below suspicion
        h.retransmitted(2)
        assert h.state_of(2) is PeerState.SUSPECT
        for _ in range(3):
            h.retransmitted(2)
        assert h.state_of(2) is PeerState.DOWN
        h.heard_from(2)
        assert h.state_of(2) is PeerState.UP
        assert h.peer(2).consecutive_failures == 0
        assert h.peer(2).recoveries == 0  # heard_from alone is not a recovery

    def test_exhausted_budget_marks_down(self):
        sim = Simulator()
        h = HealthTracker(sim)
        h.exhausted_budget(1)
        assert h.state_of(1) is PeerState.DOWN
        assert h.peer(1).exhausted == 1

    def test_channel_feeds_tracker(self):
        plan = FaultPlan.of(drop(kinds={"page_request"}))
        sim, fabric, _inj, eps = make_cluster(plan=plan, health=True)
        a, b = eps
        sim.spawn(echo_server(b))

        def caller():
            try:
                yield a.request(1, PageRequest(page=1), timeout_ns=5_000, retry=RETRY)
            except RpcTimeout:
                pass

        sim.spawn(caller())
        sim.run()
        peer = fabric.health.peer(1)
        assert peer.retransmits == 3
        assert peer.exhausted == 1
        assert peer.state is PeerState.DOWN
        assert "down" in fabric.health.describe()


# -- cluster end-to-end --------------------------------------------------------


PROG_KW = dict(n_threads=4, n_options=2040, reps=4)
# Timeout comfortably above this workload's worst legitimate reply latency
# (clone storms queue SpawnThread calls for tens of us), so a retransmit in
# the bit-identity test could only come from a real loss.
RELIABLE = dict(
    rpc_timeout_ns=100_000, rpc_max_retries=6,
    rpc_backoff_base_ns=10_000, rpc_backoff_jitter_ns=2_000,
)


class TestClusterReliability:
    def _run(self, **cfg_kw):
        prog = blackscholes.build(**PROG_KW)
        cfg = DQEMUConfig(**cfg_kw).time_scaled(100.0)
        return Cluster(2, cfg).run(prog, max_virtual_ms=60_000_000)

    def test_arming_retries_changes_nothing_without_loss(self):
        plain = self._run()
        timeout_only = self._run(rpc_timeout_ns=RELIABLE["rpc_timeout_ns"])
        armed = self._run(**RELIABLE)
        # Timings are identical all the way down to the default config...
        assert armed.virtual_ns == plain.virtual_ns
        assert armed.stats.insns_executed == plain.stats.insns_executed
        # ...and relative to a timeout-only run (which already acks futex
        # wakes), the retry budget adds not a single frame.
        assert armed.fabric.messages_sent == timeout_only.fabric.messages_sent
        assert armed.fabric.by_kind == timeout_only.fabric.by_kind
        assert armed.rpc.retransmits == 0 and armed.rpc.recoveries == 0

    def test_background_loss_is_ridden_out(self):
        plan = FaultPlan.of(drop(every_nth=50, loopback=False), seed=5)
        result = self._run(fault_plan=plan, **RELIABLE)
        assert result.exit_code == 0
        assert result.faults.dropped > 0
        assert result.rpc.retransmits > 0
        assert result.rpc.recoveries > 0
        assert all(p.state is PeerState.UP for p in result.health.peers.values())

    def test_lossy_jittered_run_repeats_bit_identically(self):
        # Req ids restart at every Cluster.run, so the jittered backoff
        # schedule — and with it the whole run — reproduces even for
        # back-to-back runs in one process.
        def go():
            plan = FaultPlan.of(drop(every_nth=50, loopback=False), seed=5)
            return self._run(fault_plan=plan, **RELIABLE)

        first, second = go(), go()
        assert first.rpc.retransmits > 0
        assert first.virtual_ns == second.virtual_ns
        assert first.rpc.retransmits == second.rpc.retransmits
        assert first.rpc.recovery_wait_ns == second.rpc.recovery_wait_ns

    def test_partition_aborts_without_retries_heals_with(self):
        clean = self._run()
        start = clean.virtual_ns // 3
        plan = FaultPlan.partition([2], start, start + 100_000)
        with pytest.raises(ServiceTimeout) as excinfo:
            self._run(rpc_timeout_ns=20_000, fault_plan=plan)
        assert "no reply" in str(excinfo.value)

        healed = self._run(fault_plan=plan, **RELIABLE)
        assert healed.exit_code == 0
        assert healed.rpc.recoveries > 0
        assert healed.rpc.recovery_wait_ns > 0
        assert all(p.state is PeerState.UP for p in healed.health.peers.values())

    def test_service_stats_attribute_retransmits(self):
        plan = FaultPlan.of(drop(every_nth=50, loopback=False), seed=5)
        result = self._run(fault_plan=plan, **RELIABLE)
        attributed = sum(
            s.retransmits for s in result.stats.services.values()
        )
        assert attributed > 0
        assert attributed <= result.rpc.retransmits
        recovered = [
            s for s in result.stats.services.values() if s.recoveries
        ]
        assert recovered and all(s.recovery_wait_ns > 0 for s in recovered)
