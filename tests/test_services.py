"""Tests for the runtime service layer: dispatcher routing, the typed RPC
channel, per-service counters, and the protocol frame inventory."""

import dataclasses
import inspect

import pytest

from repro import Cluster, DQEMUConfig, assemble
from repro.core.services.base import Dispatcher
from repro.core.stats import RunStats
from repro.errors import NetworkError, ProtocolError
from repro.net import Endpoint, Fabric
from repro.net.messages import (
    HEADER_BYTES,
    Ack,
    Message,
    PageData,
    PageRequest,
)
from repro.net.rpc import RpcTimeout
from repro.sim import Simulator


def make_cluster(n=3, **kw):
    sim = Simulator()
    fabric = Fabric(sim, **kw)
    eps = [Endpoint(sim, fabric, i) for i in range(n)]
    return sim, fabric, eps


class StubService:
    def __init__(self, name, kinds, sim=None, delay_ns=0):
        self.name = name
        self.handled_kinds = frozenset(kinds)
        self.sim = sim
        self.delay_ns = delay_ns
        self.seen = []

    def handle(self, msg):
        self.seen.append(msg.kind)
        if self.delay_ns:
            yield self.sim.timeout(self.delay_ns)
        return msg.kind
        yield  # generator protocol when delay_ns == 0


class TestDispatcher:
    def test_routes_by_kind(self):
        sim = Simulator()
        stats = RunStats()
        d = Dispatcher(sim, stats)
        a = d.register(StubService("a", {"page_request"}))
        b = d.register(StubService("b", {"ack", "shutdown"}))
        sim.spawn(d.dispatch(PageRequest(page=1)))
        sim.spawn(d.dispatch(Ack()))
        sim.run()
        assert a.seen == ["page_request"]
        assert b.seen == ["ack"]
        assert d.service_for("shutdown") is b

    def test_unknown_kind_raises_protocol_error(self):
        sim = Simulator()
        d = Dispatcher(sim, RunStats())
        d.register(StubService("a", {"page_request"}))
        gen = d.dispatch(Ack())
        with pytest.raises(ProtocolError, match="no service registered for kind 'ack'"):
            next(gen)
        with pytest.raises(ProtocolError):
            d.service_for("ack")

    def test_conflicting_kind_claim_rejected(self):
        d = Dispatcher(Simulator(), RunStats())
        d.register(StubService("a", {"page_request"}))
        with pytest.raises(ProtocolError, match="claimed by both"):
            d.register(StubService("b", {"page_request"}))

    def test_per_service_counters(self):
        sim = Simulator()
        stats = RunStats()
        d = Dispatcher(sim, stats)
        d.register(StubService("slow", {"page_request"}, sim=sim, delay_ns=500))
        d.register(StubService("idle", {"ack"}))
        for _ in range(3):
            sim.spawn(d.dispatch(PageRequest(page=1)))
        sim.run()
        assert stats.services["slow"].requests == 3
        assert stats.services["slow"].busy_ns == 3 * 500
        # Registration alone creates the stats entry, at zero.
        assert stats.services["idle"].requests == 0


class TestRpc:
    def test_correlation_under_concurrent_in_flight_requests(self):
        """Several outstanding calls from one endpoint resolve to the right
        replies even when the servers answer out of order."""
        sim, fabric, (client, s1, s2) = make_cluster()
        results = {}

        def server(ep, delay_ns):
            q = ep.subscribe("page_request")
            msg = yield q.get()
            yield sim.timeout(delay_ns)
            ep.reply(msg, PageData(page=msg.page, data=b""))

        def client_proc():
            ev1 = client.request(1, PageRequest(page=11))
            ev2 = client.request(2, PageRequest(page=22))
            assert client.pending_requests == 2
            r2 = yield ev2  # node 2 answers first (shorter delay)
            r1 = yield ev1
            results["pages"] = (r1.page, r2.page)
            assert client.pending_requests == 0

        sim.spawn(server(s1, 500_000))
        sim.spawn(server(s2, 0))
        sim.spawn(client_proc())
        sim.run()
        assert results["pages"] == (11, 22)

    def test_many_in_flight_to_one_server(self):
        sim, fabric, (client, server, _) = make_cluster()
        got = []

        def server_proc():
            q = server.subscribe("page_request")
            pending = []
            for _ in range(4):
                pending.append((yield q.get()))
            for msg in reversed(pending):  # reply LIFO
                server.reply(msg, PageData(page=msg.page, data=b""))

        def client_proc(page):
            reply = yield client.request(1, PageRequest(page=page))
            got.append((page, reply.page))

        sim.spawn(server_proc())
        for page in range(4):
            sim.spawn(client_proc(page))
        sim.run()
        assert sorted(got) == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_timeout_hook_fails_request(self):
        sim, fabric, (client, server, _) = make_cluster()
        server.subscribe("page_request")  # swallow the request, never reply
        outcome = {}

        def client_proc():
            try:
                yield client.request(1, PageRequest(page=5), timeout_ns=10_000)
            except RpcTimeout as exc:
                outcome["err"] = exc

        sim.spawn(client_proc())
        sim.run()
        assert outcome["err"].timeout_ns == 10_000
        assert client.pending_requests == 0

    def test_late_reply_after_timeout_is_dropped(self):
        sim, fabric, (client, server, _) = make_cluster()
        outcome = {}

        def server_proc():
            q = server.subscribe("page_request")
            msg = yield q.get()
            yield sim.timeout(1_000_000)  # well past the client's timeout
            server.reply(msg, PageData(page=msg.page, data=b""))

        def client_proc():
            try:
                yield client.request(1, PageRequest(page=5), timeout_ns=10_000)
            except RpcTimeout:
                outcome["timed_out"] = True

        sim.spawn(server_proc())
        sim.spawn(client_proc())
        sim.run()  # the late reply must not raise "unknown request"
        assert outcome["timed_out"]

    def test_unknown_reply_still_raises(self):
        sim, fabric, (a, b, _) = make_cluster()
        b.send(0, PageData(page=1, in_reply_to=999_999_999, data=b""))
        with pytest.raises(NetworkError, match="unknown request"):
            sim.run()


def all_message_types(cls=Message):
    for sub in cls.__subclasses__():
        yield sub
        yield from all_message_types(sub)


class TestMessageInventory:
    def test_every_subclass_round_trips_and_sizes(self):
        """Every protocol frame survives a field-level encode/decode round
        trip and bills at least the frame header on the wire."""
        subclasses = list(all_message_types())
        assert len(subclasses) >= 15  # the full §4 protocol surface
        for cls in subclasses:
            msg = cls()
            wire = dataclasses.asdict(msg)  # "encode"
            back = cls(**wire)  # "decode"
            assert back == msg, cls.__name__
            assert msg.size_bytes() >= HEADER_BYTES
            assert msg.size_bytes() == HEADER_BYTES + msg.payload_bytes()

    def test_kinds_are_unique(self):
        kinds = [cls.kind for cls in all_message_types()]
        assert len(kinds) == len(set(kinds))

    def test_payload_carrying_frames_bill_their_payload(self):
        assert PageData(data=bytes(100)).size_bytes() == HEADER_BYTES + 100


class TestRuntimeDecomposition:
    def test_master_has_no_kind_dispatch_chain(self):
        """All routing goes through the Dispatcher: the composition roots
        must not hand-match message kinds."""
        import repro.core.master as master
        import repro.core.node as node

        assert "msg.kind ==" not in inspect.getsource(master)
        assert "msg.kind ==" not in inspect.getsource(node)

    def test_run_surfaces_per_service_counters(self):
        prog = assemble(
            """
            _start:
                la a1, msg
                li a0, 1
                li a2, 6
                li a7, 64
                ecall
                li a0, 7
                li a7, 94
                ecall
            .data
            msg: .asciz "hello\\n"
            """
        )
        result = Cluster(n_slaves=1, config=DQEMUConfig()).run(prog)
        assert result.exit_code == 7
        services = result.stats.services
        # Master-side and node-side services all registered...
        for name in (
            "coherence", "syscall", "splitting", "forwarding", "futex",
            "node.coherence", "node.split_table", "node.control",
        ):
            assert name in services, name
        # ...and the exercised ones attribute their load.
        assert services["syscall"].requests >= 2  # write + exit_group
        assert services["syscall"].busy_ns > 0
        assert services["coherence"].requests == result.stats.protocol.page_requests

    def test_node_side_services_attribute_remote_traffic(self):
        """Remote spawns, futex wakes and invalidations land in the
        node-side and futex service counters."""
        from repro.workloads.mutex_bench import build

        prog = build(n_threads=2, iters=5)
        result = Cluster(n_slaves=2, config=DQEMUConfig()).run(prog)
        services = result.stats.services
        proto = result.stats.protocol
        assert services["node.control"].requests >= 2  # remote spawns + wakes
        assert services["node.coherence"].requests > 0  # invalidate/write-back
        assert services["futex"].requests == proto.futex_wakes + proto.futex_waits
