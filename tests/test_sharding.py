"""Tests for the sharded master: routing invariants, shadow-page affinity,
single-shard bit-identity, functional equivalence under sharding, queue-wait
attribution, and post-finish frame-drop accounting."""

import dataclasses

import pytest

from repro import Cluster, DQEMUConfig
from repro.core.master import MasterRuntime
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.stats import RunStats
from repro.errors import ConfigError
from repro.kernel.syscalls import SystemState
from repro.mem.layout import PAGE_SIZE, SHADOW_BASE
from repro.mem.pagestore import PageStore
from repro.mem.sharding import ShadowPageAllocator, shard_of
from repro.net.fabric import Fabric
from repro.net.messages import PageRequest
from repro.sim import Simulator
from repro.workloads import memaccess, mutex_bench


def run_mutex(**config_kw):
    prog = mutex_bench.build(n_threads=4, iters=200, private=False)
    cfg = DQEMUConfig(**config_kw)
    return Cluster(n_slaves=2, config=cfg).run(prog)


# ---------------------------------------------------------------------------
# Routing invariants
# ---------------------------------------------------------------------------


class TestShardOf:
    def test_total_partition(self):
        """Every page maps to exactly one shard, always in range."""
        for nshards in (1, 2, 3, 4, 7):
            for page in [0, 1, 2, 5, 1000, SHADOW_BASE // PAGE_SIZE, 2**36 - 1]:
                s = shard_of(page, nshards)
                assert 0 <= s < nshards
                assert shard_of(page, nshards) == s  # deterministic

    def test_single_shard_maps_everything_to_zero(self):
        assert all(shard_of(p, 1) == 0 for p in range(1000))

    def test_interleaves_contiguous_ranges(self):
        """Consecutive pages round-robin across shards (a streamed working
        set spreads over every pool instead of hammering one)."""
        shards = [shard_of(p, 4) for p in range(8)]
        assert shards == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError):
            shard_of(1, 0)
        with pytest.raises(ConfigError):
            DQEMUConfig(master_shards=0)


class TestShadowPageAllocator:
    def test_shadow_lands_on_own_shard(self):
        """A split page's shadows must live on the original's shard: the
        merge lock set stays intra-shard (deadlock-freedom argument)."""
        for nshards in (1, 2, 3, 4):
            for shard in range(nshards):
                alloc = ShadowPageAllocator(shard, nshards)
                for _ in range(32):
                    assert shard_of(alloc.alloc(), nshards) == shard

    def test_single_shard_matches_legacy_cursor(self):
        """With one shard the allocator is the pre-sharding shadow cursor:
        SHADOW_BASE up, step 1 (bit-identity of existing runs)."""
        alloc = ShadowPageAllocator(0, 1)
        base = SHADOW_BASE // PAGE_SIZE
        assert [alloc.alloc() for _ in range(4)] == [base, base + 1, base + 2, base + 3]

    def test_allocations_disjoint_across_shards(self):
        allocs = [ShadowPageAllocator(s, 4) for s in range(4)]
        pages = [a.alloc() for a in allocs for _ in range(16)]
        assert len(set(pages)) == len(pages)

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ConfigError):
            ShadowPageAllocator(2, 2)


# ---------------------------------------------------------------------------
# Single-shard bit-identity and sharded functional equivalence
# ---------------------------------------------------------------------------


class TestShardedRuns:
    def test_single_shard_is_bit_identical_to_default(self):
        """master_shards=1 (the default) takes the unsharded code paths:
        two runs — one default config, one explicit — agree on every
        RunStats counter and every fabric counter."""
        base = run_mutex()
        explicit = run_mutex(master_shards=1)
        assert base.exit_code == explicit.exit_code == 0
        assert dataclasses.asdict(base.stats) == dataclasses.asdict(explicit.stats)
        assert vars(base.fabric) == vars(explicit.fabric)
        # Single shard: no per-shard sub-breakdown beyond shard 0.
        for svc in base.stats.services.values():
            assert set(svc.shards) <= {0}

    def test_sharded_run_is_functionally_equivalent(self):
        """master_shards=4 changes timing (parallel pools) but never guest
        semantics: the sequential walk computes the same checksum."""
        prog = memaccess.build_seq_walk(npages=64)
        base = Cluster(1, DQEMUConfig()).run(prog)
        sharded = Cluster(1, DQEMUConfig(master_shards=4)).run(prog)
        assert sharded.exit_code == base.exit_code == 0
        _, base_sum = memaccess.parse_output(base.stdout)
        _, sharded_sum = memaccess.parse_output(sharded.stdout)
        assert sharded_sum == base_sum
        # The mutex worst case exercises syscalls/futexes across shards too.
        assert run_mutex(master_shards=4).exit_code == 0

    def test_sharded_splitting_preserves_semantics(self):
        """Page splitting under a sharded master: splits happen, shadows are
        shard-affine by construction, and the guest exits cleanly."""
        from tests.test_optimizations import FAST, false_sharing_program

        prog = false_sharing_program()
        cfg = DQEMUConfig(splitting_enabled=True, master_shards=2, **FAST)
        sharded = Cluster(2, cfg).run(prog, max_virtual_ms=600_000)
        assert sharded.exit_code == 0
        assert sharded.stats.protocol.splits == 1
        assert sharded.stats.protocol.split_retry_replies >= 1

    def test_shard_breakdown_sums_to_aggregate(self):
        """Per-shard rows partition the aggregate exactly for dispatched
        (master-side, sharded) services."""
        r = run_mutex(master_shards=4)
        for name in ("coherence", "splitting"):
            svc = r.stats.services[name]
            assert sum(s.requests for s in svc.shards.values()) == svc.requests
            assert sum(s.busy_ns for s in svc.shards.values()) == svc.busy_ns
            assert (
                sum(s.queue_wait_ns for s in svc.shards.values())
                == svc.queue_wait_ns
            )

    def test_queue_wait_is_measured(self):
        """The contended-mutex worst case backs up the master managers:
        coherence queue wait is nonzero and billed per shard."""
        r = run_mutex()
        assert r.stats.services["coherence"].queue_wait_ns > 0


# ---------------------------------------------------------------------------
# Node-side service-time billing (satellite: busy_ns was 0 for control work)
# ---------------------------------------------------------------------------


class TestServiceTimeBilling:
    def test_futex_and_node_control_bill_busy_time(self):
        r = run_mutex()
        services = r.stats.services
        # The futex storm bills its frames' serialization time as busy time.
        assert services["futex"].requests > 0
        assert services["futex"].busy_ns > 0
        # Node-side control handling (futex wakes, shutdown) bills the
        # per-command service timeout via started_at.
        assert services["node.control"].requests > 0
        assert services["node.control"].busy_ns > 0


# ---------------------------------------------------------------------------
# Post-finish frame drops (satellite: silent swallow -> counted drop)
# ---------------------------------------------------------------------------


class TestPostFinishDrops:
    def _make_master(self, nshards=1):
        sim = Simulator()
        cfg = DQEMUConfig(master_shards=nshards)
        fabric = Fabric(
            sim,
            bandwidth_bps=cfg.bandwidth_bps,
            one_way_latency_ns=cfg.one_way_latency_ns,
            loopback_latency_ns=cfg.loopback_latency_ns,
        )
        stats = RunStats()
        node = NodeRuntime(sim, fabric, 0, cfg, stats)
        state = SystemState(brk_start=0x10000, stdin=b"", clock_ns=lambda: sim.now)
        master = MasterRuntime(
            sim, cfg, node, [0], PageStore(), state,
            ThreadPlacer(cfg.scheduler, [0]), stats, sim.event(),
        )
        return sim, node, master, stats

    @pytest.mark.parametrize("nshards", [1, 4])
    def test_post_finish_frames_are_counted(self, nshards):
        sim, node, master, stats = self._make_master(nshards)
        master.start()
        node.start()
        master._finish(0)
        node.endpoint.request(0, PageRequest(page=5, write=False))
        sim.run()
        assert stats.protocol.post_finish_drops == 1
        assert stats.protocol.page_requests == 0  # never reached the service

    def test_pre_finish_frames_are_served(self):
        sim, node, master, stats = self._make_master()
        master.start()
        node.start()
        node.endpoint.request(0, PageRequest(page=5, write=False))
        sim.run()
        assert stats.protocol.post_finish_drops == 0
        assert stats.protocol.page_requests == 1
