"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(100)
    sim.run()
    assert sim.now == 100


def test_timeout_value_delivered_to_process():
    sim = Simulator()
    seen = []

    def proc():
        val = yield sim.timeout(10, value="hello")
        seen.append(val)

    sim.spawn(proc())
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append((sim.now, tag))

    sim.spawn(proc(30, "c"))
    sim.spawn(proc(10, "a"))
    sim.spawn(proc(20, "b"))
    sim.run()
    assert order == [(10, "a"), (20, "b"), (30, "c")]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in "abcd":
        sim.spawn(proc(tag))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        result = yield sim.spawn(child())
        return result * 2

    p = sim.spawn(parent())
    assert sim.run(until=p) == 84


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.spawn(parent())
    assert sim.run(until=p) == "caught boom"


def test_uncaught_process_exception_raises_from_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    p = sim.spawn(child())
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=p)


def test_event_succeed_twice_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_manual_event_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield sim.timeout(50)
        ev.succeed("data")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == ["data"]
    assert sim.now == 50


def test_run_until_deadline_stops_midway():
    sim = Simulator()
    hits = []

    def proc():
        for _ in range(10):
            yield sim.timeout(10)
            hits.append(sim.now)

    sim.spawn(proc())
    sim.run(until=45)
    assert hits == [10, 20, 30, 40]
    assert sim.now == 45


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event()  # never triggered

    def waiter():
        yield ev

    p = sim.spawn(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=p)


def test_all_of_collects_values():
    sim = Simulator()
    ev = sim.all_of([sim.timeout(5, "a"), sim.timeout(3, "b"), sim.timeout(9, "c")])

    def waiter():
        return (yield ev)

    p = sim.spawn(waiter())
    assert sim.run(until=p) == ["a", "b", "c"]
    assert sim.now == 9


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def waiter():
        return (yield sim.all_of([]))

    p = sim.spawn(waiter())
    assert sim.run(until=p) == []


def test_any_of_returns_first():
    sim = Simulator()

    def waiter():
        return (yield sim.any_of([sim.timeout(50, "slow"), sim.timeout(5, "fast")]))

    p = sim.spawn(waiter())
    assert sim.run(until=p) == (1, "fast")
    assert sim.now == 5


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def bad():
        yield 123

    p = sim.spawn(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run(until=p)


def test_interrupt_throws_into_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(1000)
        except RuntimeError:
            return sim.now

    p = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(7)
        p.interrupt(RuntimeError("wake up"))

    sim.spawn(interrupter())
    assert sim.run(until=p) == 7


def test_late_callback_still_invoked():
    sim = Simulator()
    ev = sim.timeout(1, "v")
    sim.run()
    assert ev.processed
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []

        def proc(i):
            for k in range(3):
                yield sim.timeout(7 * (i + 1))
                trace.append((sim.now, i, k))

        for i in range(5):
            sim.spawn(proc(i))
        sim.run()
        return trace

    assert build() == build()


def test_cancelled_timeout_advances_clock_without_callbacks():
    sim = Simulator()
    fired = []
    t = sim.timeout(100)
    t.add_callback(lambda _e: fired.append(1))
    t.cancel()
    sim.run()
    # The heap entry stays, so the clock still reaches the timer's expiry —
    # cancellation must not perturb event ordering for everything else.
    assert sim.now == 100
    assert fired == []
    assert t.cancelled and t.processed


def test_cancelled_failed_event_does_not_raise():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody should see this"))
    ev.cancel()
    sim.run()  # a live failed event with no waiters would raise here
    assert ev.processed


def test_cancel_after_processing_is_a_noop():
    sim = Simulator()
    seen = []
    t = sim.timeout(5)
    t.add_callback(lambda _e: seen.append(sim.now))
    sim.run()
    t.cancel()
    assert seen == [5]
