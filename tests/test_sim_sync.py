"""Unit tests for simulation-level synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Gate, SimLock, SimQueue, SimSemaphore, Simulator


class TestSimLock:
    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        lock = SimLock(sim)
        done = []

        def proc():
            yield lock.acquire()
            done.append(sim.now)
            lock.release()

        sim.spawn(proc())
        sim.run()
        assert done == [0]
        assert not lock.locked

    def test_fifo_ordering_under_contention(self):
        sim = Simulator()
        lock = SimLock(sim)
        order = []

        def proc(tag, hold):
            yield lock.acquire()
            order.append(tag)
            yield sim.timeout(hold)
            lock.release()

        for i, tag in enumerate("abc"):
            sim.spawn(proc(tag, 10))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        lock = SimLock(sim)
        with pytest.raises(SimulationError):
            lock.release()

    def test_held_helper(self):
        sim = Simulator()
        lock = SimLock(sim)

        def proc():
            yield from lock.held()
            assert lock.locked
            lock.release()
            return "ok"

        p = sim.spawn(proc())
        assert sim.run(until=p) == "ok"


class TestSimSemaphore:
    def test_initial_value_consumed(self):
        sim = Simulator()
        sem = SimSemaphore(sim, value=2)
        got = []

        def proc(tag):
            yield sem.acquire()
            got.append((sim.now, tag))

        for tag in "abc":
            sim.spawn(proc(tag))

        def releaser():
            yield sim.timeout(10)
            sem.release()

        sim.spawn(releaser())
        sim.run()
        assert got == [(0, "a"), (0, "b"), (10, "c")]

    def test_negative_value_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            SimSemaphore(sim, value=-1)

    def test_release_many(self):
        sim = Simulator()
        sem = SimSemaphore(sim, value=0)
        sem.release(3)
        assert sem.value == 3


class TestSimQueue:
    def test_put_then_get(self):
        sim = Simulator()
        q = SimQueue(sim)
        q.put("x")
        got = []

        def proc():
            got.append((yield q.get()))

        sim.spawn(proc())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def consumer():
            item = yield q.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(25)
            q.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [(25, "late")]

    def test_fifo_item_order(self):
        sim = Simulator()
        q = SimQueue(sim)
        for i in range(5):
            q.put(i)
        got = []

        def consumer():
            for _ in range(5):
                got.append((yield q.get()))

        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_multiple_getters_fifo(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def consumer(tag):
            got.append((tag, (yield q.get())))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))

        def producer():
            yield sim.timeout(1)
            q.put(100)
            q.put(200)

        sim.spawn(producer())
        sim.run()
        assert got == [("first", 100), ("second", 200)]

    def test_len_and_peek(self):
        sim = Simulator()
        q = SimQueue(sim)
        q.put(1)
        q.put(2)
        assert len(q) == 2
        assert q.peek_all() == [1, 2]


class TestGate:
    def test_open_releases_all_waiters(self):
        sim = Simulator()
        gate = Gate(sim)
        woken = []

        def waiter(tag):
            yield gate.wait()
            woken.append((sim.now, tag))

        for tag in "ab":
            sim.spawn(waiter(tag))

        def opener():
            yield sim.timeout(40)
            assert gate.open("go") == 2

        sim.spawn(opener())
        sim.run()
        assert woken == [(40, "a"), (40, "b")]
        assert gate.n_waiting == 0

    def test_open_with_no_waiters_returns_zero(self):
        sim = Simulator()
        gate = Gate(sim)
        assert gate.open() == 0

    def test_gate_is_repeatable(self):
        sim = Simulator()
        gate = Gate(sim)
        hits = []

        def waiter():
            yield gate.wait()
            hits.append(sim.now)
            yield gate.wait()
            hits.append(sim.now)

        sim.spawn(waiter())

        def opener():
            yield sim.timeout(10)
            gate.open()
            yield sim.timeout(10)
            gate.open()

        sim.spawn(opener())
        sim.run()
        assert hits == [10, 20]
