"""Protocol-tracing tests."""

from repro import Cluster, DQEMUConfig, assemble
from repro.core.trace import NULL_TRACER, TraceEvent, Tracer
from tests.test_cluster_integration import counter_program

HELLO = """
_start:
    li a0, 0
    li a7, 94
    ecall
"""


class TestTracerUnit:
    def test_emit_and_filter(self):
        t = Tracer()
        t.bind_clock(lambda: 42)
        t.emit("page", 1, "grant S", page=0x10)
        t.emit("page", 2, "invalidate", page=0x10)
        t.emit("thread", 1, "start", tid=5)
        assert len(t) == 3
        assert len(t.filter(category="page")) == 2
        assert len(t.filter(node=1)) == 2
        assert t.filter(tid=5)[0].what == "start"
        assert t.pages_touched() == {0x10}
        assert t.counts_by_category() == {"page": 2, "thread": 1}

    def test_capacity_bound(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.emit("page", 0, f"e{i}")
        assert len(t) == 2
        assert t.dropped == 3
        assert "dropped" in t.render()

    def test_render_event(self):
        ev = TraceEvent(1_500_000, "page", 3, "grant M", page=0x20, tid=7)
        text = ev.render()
        assert "1.500000ms" in text
        assert "n3" in text and "page=0x20" in text and "tid=7" in text

    def test_null_tracer_ignores(self):
        NULL_TRACER.emit("page", 0, "x")
        assert len(NULL_TRACER) == 0


class TestClusterTracing:
    def test_disabled_by_default(self):
        r = Cluster(1).run(assemble(HELLO), max_virtual_ms=100)
        assert r.trace is None

    def test_traces_a_threaded_run(self):
        prog = counter_program(4, 50, "mutex")
        r = Cluster(2, trace=True).run(prog, max_virtual_ms=600_000)
        tr = r.trace
        assert tr is not None
        cats = tr.counts_by_category()
        assert cats.get("page", 0) > 0
        assert cats.get("syscall", 0) > 0
        assert cats.get("thread", 0) >= 4  # starts at least
        assert cats.get("run", 0) == 1  # exit_group
        # timestamps are monotonically nondecreasing
        times = [ev.ts_ns for ev in tr.events]
        assert times == sorted(times)
        # clone placements traced with tids
        clones = [ev for ev in tr.filter(category="thread") if "clone" in ev.what]
        assert len(clones) == 4

    def test_trace_shows_optimization_events(self):
        from repro.workloads import memaccess

        prog = memaccess.build_seq_walk(npages=32)
        r = Cluster(1, DQEMUConfig(forwarding_enabled=True), trace=True).run(
            prog, max_virtual_ms=600_000
        )
        pushes = r.trace.filter(category="push")
        assert pushes
        assert all(ev.what == "forwarded" for ev in pushes)

    def test_render_is_limited(self):
        prog = counter_program(2, 50, "mutex")
        r = Cluster(1, trace=True).run(prog, max_virtual_ms=600_000)
        text = r.trace.render(limit=5)
        assert text.count("\n") <= 6
