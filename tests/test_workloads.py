"""Workload correctness across engine configurations.

Every PARSEC-like program has a bit-exact Python reference; these tests run
scaled-down instances on different cluster shapes, schedulers and
optimization settings and require identical output everywhere — the
strongest end-to-end statement that the DSM, delegation and optimizations
never corrupt guest state.
"""

import pytest

from repro import Cluster, DQEMUConfig
from repro.workloads import (
    blackscholes,
    fluidanimate,
    memaccess,
    mutex_bench,
    pi_taylor,
    swaptions,
    x264,
)

LONG = dict(max_virtual_ms=600_000)


class TestPiTaylor:
    def test_result_matches_reference(self):
        prog = pi_taylor.build(n_threads=6, terms=150, reps=1)
        r = Cluster(2).run(prog, **LONG)
        assert r.stdout == pi_taylor.reference_output(150)

    def test_reference_converges_to_pi(self):
        assert abs(pi_taylor.reference(5000) - 3.14159265) < 1e-3

    @pytest.mark.parametrize("n_slaves", [0, 1, 4])
    def test_same_answer_any_cluster_size(self, n_slaves):
        prog = pi_taylor.build(n_threads=8, terms=80, reps=1)
        r = Cluster(n_slaves).run(prog, **LONG)
        assert r.stdout == pi_taylor.reference_output(80)

    def test_qemu_baseline_same_answer(self):
        prog = pi_taylor.build(n_threads=8, terms=80, reps=1)
        r = Cluster(0, DQEMUConfig(pure_qemu=True)).run(prog, **LONG)
        assert r.stdout == pi_taylor.reference_output(80)

    def test_more_nodes_is_faster(self):
        # Communication scaled with the reduced compute (see
        # DQEMUConfig.time_scaled) so the speedup curve shape is preserved.
        cfg = DQEMUConfig().time_scaled(1000)
        mk = lambda: pi_taylor.build(n_threads=16, terms=2000, reps=4)
        t1 = Cluster(1, cfg).run(mk(), **LONG).virtual_ns
        t4 = Cluster(4, cfg).run(mk(), **LONG).virtual_ns
        assert t4 < t1 / 2


class TestMutexBench:
    def test_global_lock_completes(self):
        prog = mutex_bench.build(n_threads=8, iters=50, private=False)
        r = Cluster(2).run(prog, **LONG)
        assert r.exit_code == 0

    def test_private_locks_futex_only_for_start_barrier(self):
        prog = mutex_bench.build(n_threads=8, iters=200, private=True)
        r = Cluster(2).run(prog, **LONG)
        assert r.exit_code == 0
        # the lock phase itself is an uncontended local CAS fast path: only
        # the three timing barriers may sleep (up to n_threads-1 waiters each)
        assert r.stats.protocol.futex_waits <= 3 * 8

    def test_worst_case_slower_than_best_case(self):
        cfg = lambda: DQEMUConfig(quantum_cycles=5000)
        glob = Cluster(2, cfg()).run(
            mutex_bench.build(n_threads=8, iters=20_000, private=False), **LONG
        )
        priv = Cluster(2, cfg()).run(
            mutex_bench.build(n_threads=8, iters=20_000, private=True), **LONG
        )
        assert glob.virtual_ns > 2 * priv.virtual_ns

    def test_contention_grows_beyond_one_node(self):
        """Fig. 6 worst case: the single-slave run keeps the lock page on one
        node; adding a second node starts the ping-pong."""
        cfg = lambda: DQEMUConfig(quantum_cycles=5000)
        mk = lambda: mutex_bench.build(n_threads=8, iters=20_000, private=False)
        t1 = Cluster(1, cfg()).run(mk(), **LONG).virtual_ns
        t2 = Cluster(2, cfg()).run(mk(), **LONG).virtual_ns
        assert t2 > 1.5 * t1


class TestMemaccess:
    def test_seq_walk_checksum_zero_over_bss(self):
        prog = memaccess.build_seq_walk(npages=4)
        r = Cluster(1).run(prog, **LONG)
        elapsed, checksum = memaccess.parse_output(r.stdout)
        assert checksum == 0
        assert elapsed > 0

    def test_false_sharing_checksum_and_timings(self):
        prog = memaccess.build_false_sharing(
            n_threads=8, n_nodes=2, iters=1000, warmup_iters=500
        )
        r = Cluster(2).run(prog, **LONG)
        elapsed, checksum = memaccess.parse_false_sharing_output(r.stdout)
        assert checksum == memaccess.false_sharing_checksum(8, 1500)
        assert len(elapsed) == 8
        assert all(t > 0 for t in elapsed)

    def test_false_sharing_checksum_with_splitting(self):
        prog = memaccess.build_false_sharing(
            n_threads=8, n_nodes=2, iters=30_000, warmup_iters=30_000
        )
        cfg = DQEMUConfig(splitting_enabled=True, dsm_service_ns=30_000, splitting_trigger=6)
        r = Cluster(2, cfg).run(prog, **LONG)
        _, checksum = memaccess.parse_false_sharing_output(r.stdout)
        assert checksum == memaccess.false_sharing_checksum(8, 60_000)
        assert r.stats.protocol.splits >= 1

    def test_splitting_raises_aggregate_bandwidth(self):
        mk = lambda: memaccess.build_false_sharing(
            n_threads=8, n_nodes=2, iters=60_000, warmup_iters=30_000
        )
        cfg = lambda sp: DQEMUConfig(
            splitting_enabled=sp, dsm_service_ns=30_000, splitting_trigger=6
        )
        base = Cluster(2, cfg(False)).run(mk(), **LONG)
        split = Cluster(2, cfg(True)).run(mk(), **LONG)
        bw = lambda r: memaccess.aggregate_bandwidth_mbps(
            memaccess.parse_false_sharing_output(r.stdout)[0], 60_000
        )
        assert split.stats.protocol.splits >= 1
        assert bw(split) > 1.5 * bw(base)


class TestBlackscholes:
    @pytest.mark.parametrize("n_slaves", [1, 3])
    def test_matches_reference(self, n_slaves):
        prog = blackscholes.build(n_threads=6, n_options=120)
        r = Cluster(n_slaves).run(prog, **LONG)
        assert r.stdout == blackscholes.reference_output(120)

    def test_forwarding_does_not_change_answer(self):
        prog = blackscholes.build(n_threads=6, n_options=120)
        cfg = DQEMUConfig(forwarding_enabled=True, splitting_enabled=True)
        r = Cluster(3, cfg).run(prog, **LONG)
        assert r.stdout == blackscholes.reference_output(120)

    def test_prices_are_sane(self):
        total = blackscholes.reference(120)
        assert 0 < total < 120 * 120  # every price within [0, S_max)


class TestSwaptions:
    def test_matches_reference(self):
        prog = swaptions.build(n_threads=8, n_swaptions=32, trials=60)
        r = Cluster(2).run(prog, **LONG)
        assert r.stdout == swaptions.reference_output(32, 60)

    def test_splitting_does_not_change_answer(self):
        prog = swaptions.build(n_threads=8, n_swaptions=32, trials=60)
        cfg = DQEMUConfig(splitting_enabled=True)
        r = Cluster(2, cfg).run(prog, **LONG)
        assert r.stdout == swaptions.reference_output(32, 60)

    def test_lcg_stream_reference_properties(self):
        # the Monte-Carlo mean of max(U-0.55, 0) over U~[0,1) is ~0.10125
        mean = swaptions.reference(16, 500) / (16 * 500)
        assert 0.08 < mean < 0.12


class TestX264:
    @pytest.mark.parametrize("scheduler", ["round_robin", "hint"])
    def test_matches_reference(self, scheduler):
        prog = x264.build(n_frames=8, group_size=4, pages_per_frame=1,
                          hint=("div", 4))
        r = Cluster(2, DQEMUConfig(scheduler=scheduler)).run(prog, **LONG)
        assert r.stdout == x264.reference_output(8, 4, 1)

    def test_hint_scheduling_speeds_up_pipeline(self):
        prog = x264.build(n_frames=16, group_size=8, pages_per_frame=2,
                          hint=("div", 8))
        rr = Cluster(2, DQEMUConfig(scheduler="round_robin")).run(prog, **LONG)
        prog2 = x264.build(n_frames=16, group_size=8, pages_per_frame=2,
                           hint=("div", 8))
        hint = Cluster(2, DQEMUConfig(scheduler="hint")).run(prog2, **LONG)
        # Co-locating a GOP's frames keeps reference reads node-local; the
        # per-thread page-fault *sums* can redistribute at this small scale,
        # so the robust claim is end-to-end time (Fig. 8's bench asserts the
        # breakdown at the full 128-thread scale).
        assert hint.virtual_ns < rr.virtual_ns


class TestFluidanimate:
    @pytest.mark.parametrize("n_slaves", [1, 2])
    def test_matches_reference(self, n_slaves):
        prog = fluidanimate.build(n_threads=8, iters=2, hint=("div", 4))
        r = Cluster(n_slaves).run(prog, **LONG)
        assert r.stdout == fluidanimate.reference_output(8, 2)

    def test_hint_scheduling_reduces_pagefault_time(self):
        mk = lambda: fluidanimate.build(n_threads=16, iters=3, hint=("div", 8))
        rr = Cluster(2, DQEMUConfig(scheduler="round_robin")).run(mk(), **LONG)
        hint = Cluster(2, DQEMUConfig(scheduler="hint")).run(mk(), **LONG)
        assert hint.stats.totals()["pagefault_ns"] < rr.stats.totals()["pagefault_ns"]

    def test_reference_stencil_properties(self):
        # one iteration with no neighbours leaves block 0's first cell at +0
        assert fluidanimate.reference(1, 0) == sum(range(512))
